package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"kjoin/internal/core"
	"kjoin/internal/fault"
	"kjoin/internal/paperdata"
	"kjoin/internal/wal"
)

// The crash-recovery matrix: drive a durable server through scripted
// fault-injection schedules, "reboot" it over whatever the crash left on
// disk, and assert the durability contract —
//
//  1. every acknowledged add survives recovery,
//  2. every unacknowledged add is absent,
//  3. the recovered index answers queries bit-identically to an index
//     built directly from exactly the acknowledged adds.

// crashHarness owns one on-disk state (WAL + snapshot generations) and
// tracks which adds were acknowledged across server lifetimes.
type crashHarness struct {
	t               *testing.T
	opt             core.Options
	walDir, snapDir string
	keep            int
	acked           [][]string
}

func newCrashHarness(t *testing.T) *crashHarness {
	t.Helper()
	dir := t.TempDir()
	return &crashHarness{
		t:       t,
		opt:     core.Defaults(0.7, 0.6),
		walDir:  filepath.Join(dir, "wal"),
		snapDir: filepath.Join(dir, "snap"),
		keep:    2,
	}
}

// boot recovers a server from the harness's directories over fsys (the
// reboot: a fresh filesystem handle over the surviving bytes).
func (c *crashHarness) boot(fsys fault.FS) (*Server, error) {
	c.t.Helper()
	h, _ := paperdata.Fig1()
	s, err := NewRecovering(h, c.opt, Config{Logf: c.t.Logf})
	if err != nil {
		c.t.Fatal(err)
	}
	err = s.Recover(Durability{
		FS:          fsys,
		WALDir:      c.walDir,
		SnapshotDir: c.snapDir,
		Keep:        c.keep,
		Policy:      wal.SyncAlways,
		Logf:        c.t.Logf,
	})
	return s, err
}

func (c *crashHarness) mustBoot(fsys fault.FS) *Server {
	c.t.Helper()
	s, err := c.boot(fsys)
	if err != nil {
		c.t.Fatalf("recovery failed: %v", err)
	}
	return s
}

// add posts one object and records whether it was acknowledged (HTTP
// 200). The acknowledgment set — not what the process had in memory —
// is the durability contract.
func (c *crashHarness) add(s *Server, tokens []string) bool {
	c.t.Helper()
	body, _ := json.Marshal(map[string]any{"tokens": tokens})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/objects", strings.NewReader(string(body))))
	if rec.Code == http.StatusOK {
		c.acked = append(c.acked, tokens)
		return true
	}
	return false
}

// verify checks the recovered server against an oracle index built
// directly from exactly the acknowledged adds: same object count, and
// bit-identical answers (index and similarity) for every query.
func (c *crashHarness) verify(s *Server) {
	c.t.Helper()
	h, _ := paperdata.Fig1()
	oracle, err := core.NewIndexer(h, c.opt)
	if err != nil {
		c.t.Fatal(err)
	}
	for _, tokens := range c.acked {
		if _, err := oracle.Add(tokens); err != nil {
			c.t.Fatal(err)
		}
	}
	ix := s.ix.Load()
	if got, want := ix.Len(), oracle.Len(); got != want {
		c.t.Fatalf("recovered index has %d objects, acknowledged %d", got, want)
	}
	for qi, q := range append(paperdata.Table1(), []string{"kfc", "jfk"}) {
		want, err := oracle.Query(q)
		if err != nil {
			c.t.Fatal(err)
		}
		got, err := ix.Query(q)
		if err != nil {
			c.t.Fatal(err)
		}
		if len(got) != len(want) {
			c.t.Fatalf("query %d: %d matches, oracle has %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				c.t.Fatalf("query %d match %d: got %+v, oracle %+v (similarity must be bit-identical)", qi, i, got[i], want[i])
			}
		}
	}
}

// snapshot forces a snapshot generation and reports its error.
func (c *crashHarness) snapshot(s *Server) error {
	c.t.Helper()
	return s.SnapshotGeneration()
}

// TestCrashMatrix is the scripted fault-injection sweep: each case
// scripts one failure mode at one injection point, drives a fixed add
// workload against it, optionally crashes, reboots, and asserts the
// contract. The workload is the paper's Table 1 objects — enough
// overlap that queries exercise real candidate verification.
func TestCrashMatrix(t *testing.T) {
	objects := paperdata.Table1()
	cases := []struct {
		name  string
		fault fault.Fault
		// crashAfterAdds, when ≥ 0, hard-kills the filesystem after that
		// many add attempts (on top of any scripted fault).
		crashAfterAdds int
		// snapshotEvery forces a snapshot generation after every Nth add
		// attempt (0 = no snapshots).
		snapshotEvery int
	}{
		{name: "fail-3rd-wal-write", crashAfterAdds: -1,
			fault: fault.Fault{Op: fault.OpWrite, Path: "wal.", N: 3, Mode: fault.Fail}},
		{name: "short-write-wal", crashAfterAdds: -1,
			fault: fault.Fault{Op: fault.OpWrite, Path: "wal.", N: 2, Mode: fault.ShortWrite, Keep: 5}},
		{name: "fail-2nd-wal-fsync", crashAfterAdds: -1,
			fault: fault.Fault{Op: fault.OpSync, Path: "wal.", N: 2, Mode: fault.Fail}},
		{name: "crash-before-wal-write", crashAfterAdds: -1,
			fault: fault.Fault{Op: fault.OpWrite, Path: "wal.", N: 4, Mode: fault.CrashBefore}},
		{name: "crash-after-snapshot-rename", crashAfterAdds: -1, snapshotEvery: 2,
			fault: fault.Fault{Op: fault.OpRename, Path: "snap.0", N: 2, Mode: fault.CrashAfter}},
		{name: "fail-snapshot-write", crashAfterAdds: -1, snapshotEvery: 2,
			fault: fault.Fault{Op: fault.OpWrite, Path: "snap.0", N: 1, Mode: fault.Fail}},
		{name: "fail-snapshot-fsync", crashAfterAdds: -1, snapshotEvery: 3,
			fault: fault.Fault{Op: fault.OpSync, Path: "snap.0", N: 1, Mode: fault.Fail}},
		{name: "kill-mid-run", crashAfterAdds: 4},
		{name: "kill-after-snapshot", crashAfterAdds: 5, snapshotEvery: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCrashHarness(t)
			var script []fault.Fault
			if tc.fault != (fault.Fault{}) {
				script = append(script, tc.fault)
			}
			inj := fault.NewInjector(fault.OS{}, script...)
			s := c.mustBoot(inj)
			for i, tokens := range objects {
				c.add(s, tokens)
				if tc.snapshotEvery > 0 && (i+1)%tc.snapshotEvery == 0 {
					// Snapshot failures are survivable by design; the WAL
					// still covers everything acknowledged.
					if err := c.snapshot(s); err != nil {
						t.Logf("snapshot after add %d: %v", i+1, err)
					}
				}
				if tc.crashAfterAdds >= 0 && i+1 == tc.crashAfterAdds {
					inj.Crash()
				}
			}
			if len(c.acked) == 0 {
				t.Fatal("workload acknowledged nothing; matrix case is vacuous")
			}
			if len(c.acked) == len(objects) && tc.crashAfterAdds < 0 && tc.fault.Path == "wal." {
				t.Fatal("scripted wal fault did not reject any add")
			}
			inj.Crash() // whatever survives now is what a power cut leaves
			c.verify(c.mustBoot(fault.OS{}))
		})
	}
}

// TestCrashSweepEveryWalWrite crashes after the Nth WAL write for every
// N the workload produces: the exhaustive version of the kill tests,
// proving the contract holds at every single write boundary.
func TestCrashSweepEveryWalWrite(t *testing.T) {
	objects := paperdata.Table1()
	for n := 1; n <= len(objects); n++ {
		t.Run(fmt.Sprintf("crash-after-write-%d", n), func(t *testing.T) {
			c := newCrashHarness(t)
			inj := fault.NewInjector(fault.OS{},
				fault.Fault{Op: fault.OpWrite, Path: "wal.", N: n, Mode: fault.CrashAfter})
			s := c.mustBoot(inj)
			for _, tokens := range objects {
				c.add(s, tokens)
			}
			if got := len(c.acked); got != n-1 {
				t.Fatalf("crash after write %d acknowledged %d adds, want %d", n, got, n-1)
			}
			c.verify(c.mustBoot(fault.OS{}))
		})
	}
}

// TestRecoveryTornTailAndCorruptSnapshot: the double-failure drill. The
// newest snapshot generation is bit-flipped at rest AND the WAL tail is
// torn mid-record. Recovery must fall back to the older generation,
// replay the log across the gap (compaction is floored at the oldest
// retained generation precisely for this), truncate the torn tail, and
// still answer bit-identically.
func TestRecoveryTornTailAndCorruptSnapshot(t *testing.T) {
	objects := paperdata.Table1()
	c := newCrashHarness(t)
	s := c.mustBoot(fault.OS{})
	for i, tokens := range objects {
		if !c.add(s, tokens) {
			t.Fatalf("add %d rejected on a healthy filesystem", i)
		}
		if i == 2 || i == 5 {
			if err := c.snapshot(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest generation at rest.
	gens, err := filepath.Glob(filepath.Join(c.snapDir, "snap.0*"))
	if err != nil || len(gens) != 2 {
		t.Fatalf("want 2 generations, have %v (%v)", gens, err)
	}
	newest := gens[len(gens)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear the WAL tail: append half a record's worth of garbage, as if
	// the final append's pages flushed partially before power was cut.
	segs, err := filepath.Glob(filepath.Join(c.walDir, "wal.*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c.verify(c.mustBoot(fault.OS{}))
}

// TestRecoveryAllSnapshotsCorruptFailsLoudly: when every generation is
// unreadable, recovery must refuse to start (serving an empty index as
// if it were the data would be silent loss).
func TestRecoveryAllSnapshotsCorruptFailsLoudly(t *testing.T) {
	c := newCrashHarness(t)
	s := c.mustBoot(fault.OS{})
	for _, tokens := range paperdata.Table1()[:4] {
		c.add(s, tokens)
	}
	if err := c.snapshot(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gens, _ := filepath.Glob(filepath.Join(c.snapDir, "snap.0*"))
	for _, g := range gens {
		if err := os.WriteFile(g, []byte("rotten"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.boot(fault.OS{}); err == nil {
		t.Fatal("recovery over all-corrupt snapshots succeeded silently")
	}
}

// TestReadyzGatesOnRecovery: before Recover the server reports 503 and
// rejects expensive endpoints; after, it serves.
func TestReadyzGatesOnRecovery(t *testing.T) {
	h, _ := paperdata.Fig1()
	s, err := NewRecovering(h, core.Defaults(0.7, 0.6), Config{})
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before recovery = %d, want 503", rec.Code)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/objects", strings.NewReader(`{"tokens":["kfc"]}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST /objects before recovery = %d, want 503", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz before recovery = %d, want 200 (liveness is not readiness)", rec.Code)
	}
	dir := t.TempDir()
	if err := s.Recover(Durability{WALDir: filepath.Join(dir, "wal"), SnapshotDir: filepath.Join(dir, "snap")}); err != nil {
		t.Fatal(err)
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", rec.Code)
	}
	if rec := get("/stats"); !strings.Contains(rec.Body.String(), "wal_last_seq") {
		t.Fatalf("/stats lacks wal fields: %s", rec.Body.String())
	}
}

// TestWalFailureDegradesNotCorrupts: after the log poisons itself the
// server keeps answering queries, refuses new adds fast, reports the
// state in /stats, and refuses to snapshot (a snapshot could persist
// index state the log never acknowledged).
func TestWalFailureDegradesNotCorrupts(t *testing.T) {
	c := newCrashHarness(t)
	inj := fault.NewInjector(fault.OS{},
		fault.Fault{Op: fault.OpSync, Path: "wal.", N: 2, Mode: fault.Fail})
	s := c.mustBoot(inj)
	objects := paperdata.Table1()
	for _, tokens := range objects[:4] {
		c.add(s, tokens)
	}
	if len(c.acked) != 1 {
		t.Fatalf("acked %d adds, want 1 (fsync 2 rejected, then poisoned)", len(c.acked))
	}
	// Queries still serve.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(`{"tokens":["kfc"]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("query on degraded server = %d, want 200", rec.Code)
	}
	// Stats say the log is unhealthy.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if !strings.Contains(rec.Body.String(), `"wal_healthy":false`) {
		t.Fatalf("/stats does not report the poisoned log: %s", rec.Body.String())
	}
	// Snapshots are refused.
	if err := s.SnapshotGeneration(); err == nil {
		t.Fatal("snapshot succeeded on a poisoned log")
	}
	inj.Crash()
	c.verify(c.mustBoot(fault.OS{}))
}

// TestWalAppendFailurePoisonsSnapshot: the write-failure flavor of
// poisoning. A failed Append leaves the rejected object in the index
// while the durable sequence never advanced, so a later Sync on that
// stale sequence succeeds — the snapshot must still be refused, or it
// would durably persist an add whose acknowledgment was refused. The
// rejected request must also surface as wal_failed, like every other
// WAL failure path.
func TestWalAppendFailurePoisonsSnapshot(t *testing.T) {
	c := newCrashHarness(t)
	inj := fault.NewInjector(fault.OS{},
		fault.Fault{Op: fault.OpWrite, Path: "wal.", N: 3, Mode: fault.Fail})
	s := c.mustBoot(inj)
	objects := paperdata.Table1()
	for _, tokens := range objects[:2] {
		if !c.add(s, tokens) {
			t.Fatal("healthy add rejected")
		}
	}
	// The third append fails and poisons the log; the object is in the
	// index but was never acknowledged.
	body, _ := json.Marshal(map[string]any{"tokens": objects[2]})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/objects", strings.NewReader(string(body))))
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "wal_failed") {
		t.Fatalf("poisoning add = %d %s, want 500 with code wal_failed", rec.Code, rec.Body.String())
	}
	if err := s.SnapshotGeneration(); err == nil {
		t.Fatal("snapshot succeeded on a log poisoned by a failed append (would persist an unacknowledged add)")
	}
	inj.Crash()
	c.verify(c.mustBoot(fault.OS{}))
}

// TestCompactionFloorSurvivesRestart: the compaction floor must be
// re-seeded from every generation still on disk, not just the one that
// loaded. Otherwise the first post-restart compaction deletes WAL
// records the older generations need, and a later fallback past a
// corrupt newest generation finds its log gone.
func TestCompactionFloorSurvivesRestart(t *testing.T) {
	objects := paperdata.Table1()
	c := newCrashHarness(t)
	c.keep = 3
	s := c.mustBoot(fault.OS{})
	for i, tokens := range objects[:5] {
		if !c.add(s, tokens) {
			t.Fatalf("add %d rejected on a healthy filesystem", i)
		}
		if i == 1 || i == 3 {
			if err := c.snapshot(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart (two generations on disk, one unsnapshotted WAL record),
	// then add and snapshot so compaction runs with the re-seeded floor.
	s = c.mustBoot(fault.OS{})
	if !c.add(s, objects[5]) {
		t.Fatal("post-restart add rejected")
	}
	if err := c.snapshot(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot every generation but the oldest: recovery must fall back to it
	// and find all the WAL records it needs still in the log.
	gens, err := filepath.Glob(filepath.Join(c.snapDir, "snap.0*"))
	if err != nil || len(gens) != 3 {
		t.Fatalf("want 3 generations, have %v (%v)", gens, err)
	}
	for _, g := range gens[1:] {
		if err := os.WriteFile(g, []byte("rotten"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c.verify(c.mustBoot(fault.OS{}))
}

// TestRecoveryRefusesOvercompactedWal: when the log's numbering proves
// records were compacted past what the loaded snapshot covers (a single
// empty segment whose name is ahead of the snapshot's sequence),
// recovery must fail loudly — replaying nothing and serving the shorter
// index would silently drop acknowledged adds.
func TestRecoveryRefusesOvercompactedWal(t *testing.T) {
	c := newCrashHarness(t)
	s := c.mustBoot(fault.OS{})
	objects := paperdata.Table1()
	for _, tokens := range objects[:2] {
		c.add(s, tokens)
	}
	if err := c.snapshot(s); err != nil { // generation 1 @ seq 2
		t.Fatal(err)
	}
	for _, tokens := range objects[2:4] {
		c.add(s, tokens)
	}
	if err := c.snapshot(s); err != nil { // generation 2 @ seq 4
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate an over-compacted log: every record gone, numbering
	// surviving only in the fresh segment's name (first seq 5).
	if err := os.RemoveAll(c.walDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(c.walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.walDir, fmt.Sprintf("wal.%020d", 5)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// Rot the newest generation: the fallback covers only seq 2, and the
	// acknowledged adds at seqs 3 and 4 now exist nowhere.
	gens, err := filepath.Glob(filepath.Join(c.snapDir, "snap.0*"))
	if err != nil || len(gens) != 2 {
		t.Fatalf("want 2 generations, have %v (%v)", gens, err)
	}
	if err := os.WriteFile(gens[len(gens)-1], []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c.boot(fault.OS{})
	if err == nil {
		t.Fatal("recovery over an over-compacted wal succeeded silently")
	}
	if !strings.Contains(err.Error(), "compacted") {
		t.Fatalf("wrong failure shape: %v", err)
	}
}

// TestRecoverRejectsDeletedWal: a WAL deleted out-of-band while
// snapshots claim coverage must fail recovery loudly, not serve the
// snapshot as if nothing happened.
func TestRecoverRejectsDeletedWal(t *testing.T) {
	c := newCrashHarness(t)
	s := c.mustBoot(fault.OS{})
	for _, tokens := range paperdata.Table1()[:4] {
		c.add(s, tokens)
	}
	if err := c.snapshot(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(c.walDir); err != nil {
		t.Fatal(err)
	}
	_, err := c.boot(fault.OS{})
	if err == nil {
		t.Fatal("recovery with a deleted wal succeeded")
	}
	if errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wrong failure shape: %v", err)
	}
}

// TestConcurrentAddsCrashAtSyncBoundary: many goroutines add at once
// (group-committing onto shared fsyncs) and the filesystem dies at a
// sync boundary. Acknowledged adds are exactly the records of completed
// group commits — a clean prefix of the log — and recovery must produce
// exactly them, in id order, answering identically to an oracle built
// from them.
func TestConcurrentAddsCrashAtSyncBoundary(t *testing.T) {
	c := newCrashHarness(t)
	inj := fault.NewInjector(fault.OS{},
		fault.Fault{Op: fault.OpSync, Path: "wal.", N: 3, Mode: fault.CrashBefore})
	s := c.mustBoot(inj)

	objects := paperdata.Table1()
	type ackedAdd struct {
		id     int
		tokens []string
	}
	var (
		mu    sync.Mutex
		acked []ackedAdd
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				tokens := objects[(g*4+i)%len(objects)]
				body, _ := json.Marshal(map[string]any{"tokens": tokens})
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("POST", "/objects", strings.NewReader(string(body))))
				if rec.Code != http.StatusOK {
					continue
				}
				var resp struct {
					ID int `json:"id"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				acked = append(acked, ackedAdd{id: resp.ID, tokens: tokens})
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	// Ids are assigned in lockstep with WAL sequences, and only completed
	// group commits were acknowledged, so the acked set sorted by id is
	// the exact insertion order recovery must reproduce.
	sort.Slice(acked, func(i, j int) bool { return acked[i].id < acked[j].id })
	for i, a := range acked {
		if a.id != i {
			t.Fatalf("acked ids are not a contiguous prefix: position %d has id %d", i, a.id)
		}
		c.acked = append(c.acked, a.tokens)
	}
	c.verify(c.mustBoot(fault.OS{}))
}

// TestSnapshotGenerationSkipsWhenIdle: repeated snapshots with no new
// adds must not churn generations — one generation per state, not per
// tick.
func TestSnapshotGenerationSkipsWhenIdle(t *testing.T) {
	c := newCrashHarness(t)
	s := c.mustBoot(fault.OS{})
	for _, tokens := range paperdata.Table1()[:3] {
		c.add(s, tokens)
	}
	for i := 0; i < 4; i++ {
		if err := s.SnapshotGeneration(); err != nil {
			t.Fatal(err)
		}
	}
	gens, _ := filepath.Glob(filepath.Join(c.snapDir, "snap.0*"))
	if len(gens) != 1 {
		t.Fatalf("idle snapshotting produced %d generations, want 1", len(gens))
	}
	// New adds make the next snapshot real again.
	c.add(s, paperdata.Table1()[3])
	if err := s.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}
	gens, _ = filepath.Glob(filepath.Join(c.snapDir, "snap.0*"))
	if len(gens) != 2 {
		t.Fatalf("post-add snapshot produced %d generations, want 2", len(gens))
	}
	c.verify(c.mustBoot(fault.OS{}))
}

// TestRecoverySegmentLayoutFromSealRecords: the segmented-engine
// durability contract. A small memtable forces several seals (each
// logged as an OpSeal record) and background merges while the workload
// streams in; a mid-run snapshot captures one intermediate layout so
// recovery exercises both the v3 verbatim-layout load and seal-record
// replay on top of it. After a power cut, the rebooted engine — once
// its merger quiesces — must reproduce the exact pre-crash segment
// layout, not merely the same objects.
func TestRecoverySegmentLayoutFromSealRecords(t *testing.T) {
	c := newCrashHarness(t)
	c.opt.SealEvery = 3

	// 22 objects: Table 1 cycled with a distinguishing free token. With
	// SealEvery=3 the seal sequence reaches the multi-segment fixpoint
	// [12 6 3] with one object left in the memtable — a layout with
	// history, not a single collapsed segment.
	base := paperdata.Table1()
	var objects [][]string
	for i := 0; i < 22; i++ {
		o := append([]string(nil), base[i%len(base)]...)
		objects = append(objects, append(o, fmt.Sprintf("extra%d", i)))
	}

	inj := fault.NewInjector(fault.OS{})
	s := c.mustBoot(inj)
	for i, tokens := range objects {
		if !c.add(s, tokens) {
			t.Fatalf("add %d rejected on a healthy filesystem", i)
		}
		if i == 7 {
			// Snapshot while merges may be mid-flight: the pinned view's
			// layout is whatever the race left published.
			if err := c.snapshot(s); err != nil {
				t.Fatal(err)
			}
		}
	}

	ix := s.ix.Load()
	ix.WaitMerges()
	pre := ix.SegmentSizes()
	preStats := ix.SegmentStats()
	if len(pre) < 2 {
		t.Fatalf("workload produced layout %v; need a multi-segment fixpoint to make the test meaningful", pre)
	}
	if preStats.SealTotal == 0 || preStats.MergeTotal == 0 {
		t.Fatalf("workload never sealed or merged: %+v", preStats)
	}

	inj.Crash()
	s2 := c.mustBoot(fault.OS{})
	ix2 := s2.ix.Load()
	ix2.WaitMerges()
	if got := ix2.SegmentSizes(); !reflect.DeepEqual(got, pre) {
		t.Fatalf("recovered layout %v, pre-crash layout %v", got, pre)
	}
	if got := ix2.SegmentStats(); got.MemObjects != preStats.MemObjects {
		t.Fatalf("recovered memtable holds %d objects, pre-crash %d", got.MemObjects, preStats.MemObjects)
	}
	c.verify(s2)
}
