package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// This file is the server side of WAL-shipping replication. A primary
// with durability configured exposes two extra endpoints:
//
//	GET /wal/stream?from=<seq>&wait=<dur>  one batch of durable, framed
//	                                       WAL records starting at seq
//	GET /replica/snapshot                  a durable snapshot to bootstrap
//	                                       or resync a follower from
//
// The stream is a long poll, not an infinite chunked body: each response
// is one self-delimiting batch (Content-Length set) carrying the
// primary's durable horizon in a header, and the follower immediately
// re-polls from its next unapplied sequence. That keeps resumption
// trivial — the request parameter is the only cursor — and means a
// half-delivered batch tears exactly like a crashed WAL tail, which the
// frame checksums already reject.
//
// A server started with NewReplica is the other side: read-only, fed
// through ApplyReplicated/InstallIndex by a replica.Follower, and
// gating /query on a bounded-staleness check.

// Replication protocol headers.
const (
	// HeaderDurableSeq carries the primary's durable WAL horizon on
	// /wal/stream and /replica/snapshot responses.
	HeaderDurableSeq = "X-Kjoin-Durable-Seq"
	// HeaderWALFloor carries the compaction floor on a 410 stream
	// response: the lowest sequence the primary can still serve.
	HeaderWALFloor = "X-Kjoin-Wal-Floor"
	// HeaderReplicaLag carries a replica's staleness (milliseconds since
	// it last confirmed catch-up; -1 = never) on /query responses.
	HeaderReplicaLag = "X-Kjoin-Replica-Lag-Ms"
)

const (
	// streamBatchBytes caps one /wal/stream response body (whole frames).
	streamBatchBytes = 256 << 10
	// streamPollInterval is the nominal pause between a waiting stream
	// handler's re-checks of the durable horizon; each pause is jittered
	// to [1/2, 3/2) of it (see streamPollJitter).
	streamPollInterval = 10 * time.Millisecond
	// maxStreamWait caps the wait parameter so a stream request can never
	// hold a connection longer than a load balancer tolerates.
	maxStreamWait = 30 * time.Second
)

// StalenessMode selects what a replica does with queries once its lag
// exceeds the configured bound.
type StalenessMode int

const (
	// StaleReject answers 503 (code "stale_replica") when the lag bound
	// is exceeded: clients fail over to another endpoint.
	StaleReject StalenessMode = iota
	// StaleMark serves the query anyway and reports the lag in the
	// X-Kjoin-Replica-Lag-Ms header: clients decide for themselves.
	StaleMark
)

// ReplicaConfig bounds how stale a replica may serve reads.
type ReplicaConfig struct {
	// Bound is the maximum tolerated staleness (default 5s): time since
	// the replica last confirmed it had applied everything the primary
	// had durably acknowledged.
	Bound time.Duration
	// Mode is what to do beyond the bound (default StaleReject).
	Mode StalenessMode
}

// replicaState is the follower-side replication telemetry, updated by
// the replica.Follower loop and read lock-free by handlers.
type replicaState struct {
	cfg ReplicaConfig
	// applied is the highest WAL sequence applied to the index.
	applied atomic.Uint64
	// lastCaughtUp is the unixnano instant the follower last confirmed
	// catch-up with the primary's durable horizon (0 = never).
	lastCaughtUp atomic.Int64
	// healthy is false while the stream is broken (backoff, resync).
	healthy atomic.Bool
}

// lag returns the current staleness; ok is false before first catch-up.
func (rs *replicaState) lag() (time.Duration, bool) {
	t := rs.lastCaughtUp.Load()
	if t == 0 {
		return 0, false
	}
	return time.Since(time.Unix(0, t)), true
}

// lagSeconds is lag for /stats: seconds, or -1 before first catch-up.
func (rs *replicaState) lagSeconds() float64 {
	d, ok := rs.lag()
	if !ok {
		return -1
	}
	return d.Seconds()
}

// NewReplica returns a read-only follower server: adds answer 403,
// /query passes the bounded-staleness gate, and /readyz reports 503
// until the first catch-up (MarkReplicaCaughtUp). The index is fed
// exclusively through InstallIndex and ApplyReplicated — normally by a
// replica.Follower tailing a primary's /wal/stream.
func NewReplica(h *hierarchy.Hierarchy, opt core.Options, cfg Config, rc ReplicaConfig) (*Server, error) {
	ix, err := core.NewIndexer(h, opt)
	if err != nil {
		return nil, err
	}
	if rc.Bound <= 0 {
		rc.Bound = 5 * time.Second
	}
	s := wrap(h, opt, cfg, ix)
	s.replica = &replicaState{cfg: rc}
	s.ready.Store(false)
	return s, nil
}

// IsReplica reports whether this server is a read-only follower.
func (s *Server) IsReplica() bool { return s.replica != nil }

// ApplyReplicated applies one shipped WAL record to the index through
// the same contiguity-checked paths recovery replays through: seq must
// be exactly one past the last applied sequence. Seal records reproduce
// the primary's segment layout on the follower.
func (s *Server) ApplyReplicated(seq uint64, op wal.Op, tokens []string) error {
	s.mu.Lock()
	ix := s.ix.Load()
	var err error
	if op == wal.OpSeal {
		err = ix.ApplySealLogged(seq)
	} else {
		err = ix.ApplyLogged(seq, tokens)
	}
	s.mu.Unlock()
	if err == nil && s.replica != nil {
		s.replica.applied.Store(seq)
	}
	return err
}

// InstallIndex atomically replaces the served index — a follower
// bootstrapping or resyncing from a snapshot swaps the rebuilt index in
// whole, never exposing a half-applied state to queries.
func (s *Server) InstallIndex(ix *core.Indexer) {
	s.mu.Lock()
	s.ix.Store(ix)
	s.mu.Unlock()
	if s.replica != nil {
		s.replica.applied.Store(ix.WALSeq())
	}
}

// MarkReplicaCaughtUp records that at instant t the replica had applied
// every record the primary had durably acknowledged as of t. The first
// call flips the server ready: a replica serves no queries before it
// has caught up once.
func (s *Server) MarkReplicaCaughtUp(t time.Time) {
	rs := s.replica
	if rs == nil {
		return
	}
	rs.lastCaughtUp.Store(t.UnixNano())
	rs.healthy.Store(true)
	s.ready.Store(true)
}

// SetReplicaHealthy flips the stream-health flag /stats reports (false
// while the follower is backing off or resyncing).
func (s *Server) SetReplicaHealthy(v bool) {
	if rs := s.replica; rs != nil {
		rs.healthy.Store(v)
	}
}

// ReplicaAppliedSeq returns the highest applied WAL sequence (0 on a
// non-replica).
func (s *Server) ReplicaAppliedSeq() uint64 {
	if rs := s.replica; rs != nil {
		return rs.applied.Load()
	}
	return 0
}

// readOnly rejects writes on a replica — outermost, ahead of even the
// ready gate: a follower's index is a replay of the primary's log, and
// a locally accepted add would fork it from the stream it is applying.
// On a primary it is a no-op.
func (s *Server) readOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.replica != nil {
			serverutil.WriteError(w, http.StatusForbidden, "read_only_replica",
				"this server is a read replica; send writes to the primary")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// staleGate enforces the bounded-staleness contract on a replica's
// queries; on a primary it is a no-op. Reject mode answers 503 so a
// fail-over client moves on; mark mode serves the result and lets the
// lag header speak.
func (s *Server) staleGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rs := s.replica
		if rs == nil {
			next.ServeHTTP(w, r)
			return
		}
		lag, ok := rs.lag()
		ms := int64(-1)
		if ok {
			ms = lag.Milliseconds()
		}
		w.Header().Set(HeaderReplicaLag, strconv.FormatInt(ms, 10))
		if rs.cfg.Mode == StaleMark {
			next.ServeHTTP(w, r)
			return
		}
		if !ok || lag > rs.cfg.Bound {
			serverutil.WriteError(w, http.StatusServiceUnavailable, "stale_replica",
				fmt.Sprintf("replica lag %dms exceeds the %s staleness bound", ms, rs.cfg.Bound))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// handleWALStream serves one batch of durable WAL frames from the
// sequence in ?from. With ?wait=<duration> the handler long-polls: an
// empty durable horizon is re-checked until a record arrives or the
// wait expires, and an empty 200 tells the follower "you are caught up
// as of this instant". A from below the compaction floor answers 410
// Gone with the floor in a header — the follower must resync from a
// snapshot, and silently skipping ahead would hide lost records.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	wlog := s.wal.Load()
	if wlog == nil {
		serverutil.WriteError(w, http.StatusServiceUnavailable, "replication_unavailable",
			"this server has no write-ahead log to stream (durability not configured)")
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		serverutil.WriteError(w, http.StatusBadRequest, "bad_from",
			"from must be a positive WAL sequence number")
		return
	}
	var wait time.Duration
	if ws := q.Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil || wait < 0 {
			serverutil.WriteError(w, http.StatusBadRequest, "bad_wait",
				"wait must be a non-negative duration")
			return
		}
		if wait > maxStreamWait {
			wait = maxStreamWait
		}
	}
	deadline := time.Now().Add(wait)
	for {
		frames, _, durable, rerr := wlog.ReadDurable(from, streamBatchBytes)
		if rerr != nil {
			var ce *wal.CompactedError
			if errors.As(rerr, &ce) {
				w.Header().Set(HeaderWALFloor, strconv.FormatUint(ce.Floor, 10))
				serverutil.WriteError(w, http.StatusGone, "wal_compacted", ce.Error())
				return
			}
			s.opError(w, "wal_stream_failed", rerr)
			return
		}
		if len(frames) > 0 || !time.Now().Before(deadline) {
			w.Header().Set(HeaderDurableSeq, strconv.FormatUint(durable, 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(frames)))
			_, _ = w.Write(frames)
			return
		}
		select {
		case <-r.Context().Done():
			// Client gone; there is no one to answer.
			return
		case <-time.After(s.streamPollJitter()):
		}
	}
}

// streamPollJitter returns the next long-poll pause: uniform in
// [interval/2, 3·interval/2), deterministically seeded. A fleet of
// followers all waiting on the same durable horizon would otherwise
// re-check in lockstep and hit the log together on every tick — the
// same thundering-herd shape serverutil.Admit jitters its Retry-After
// against.
func (s *Server) streamPollJitter() time.Duration {
	s.pollMu.Lock()
	defer s.pollMu.Unlock()
	if s.pollR == nil {
		s.pollR = rng.New(s.cfg.Seed)
	}
	return streamPollInterval/2 + time.Duration(s.pollR.Float64()*float64(streamPollInterval))
}

// handleReplicaSnapshot serves a durable snapshot for follower
// bootstrap/resync: the log is fsync'd through the snapshot's sequence
// before a byte is sent, so the snapshot can never contain a record the
// primary might yet refuse to acknowledge.
func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	buf, seq, err := s.SnapshotBuffer()
	if err != nil {
		s.opError(w, "snapshot_failed", err)
		return
	}
	w.Header().Set(HeaderDurableSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = io.Copy(w, buf)
}

// SnapshotBuffer serializes the index under the read lock and — when a
// WAL is configured — refuses while the log is poisoned and syncs the
// log through the snapshot's sequence, exactly like SnapshotGeneration.
// It returns the buffer and the WAL sequence the snapshot covers.
// Followers also use it to persist their local catch-up snapshots
// (where no WAL is configured and the sync is a no-op).
//
// The barrier role is declared by contract rather than derived: the
// sync is conditional on a WAL being configured, and when there is
// none, a successful return still means "everything this snapshot
// covers is as durable as the log can make it".
//
//kjoinlint:ackorder barrier
func (s *Server) SnapshotBuffer() (*bytes.Buffer, uint64, error) {
	s.mu.RLock()
	wlog := s.wal.Load()
	pv := s.ix.Load().Pin()
	var poisoned error
	if wlog != nil {
		poisoned = wlog.Err()
	}
	s.mu.RUnlock()
	if poisoned != nil {
		return nil, 0, fmt.Errorf("server: wal unhealthy; refusing snapshot: %w", poisoned)
	}
	seq := pv.WALSeq()
	var buf bytes.Buffer
	if err := pv.WriteSnapshot(&buf); err != nil {
		return nil, 0, err
	}
	if wlog != nil {
		if serr := wlog.Sync(seq); serr != nil {
			return nil, 0, fmt.Errorf("server: wal sync before snapshot: %w", serr)
		}
	}
	return &buf, seq, nil
}
