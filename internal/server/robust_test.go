package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/paperdata"
	"kjoin/internal/serverutil"
)

func newConfiguredServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	h, _ := paperdata.Fig1()
	s, err := NewWithConfig(h, core.Defaults(0.7, 0.6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func decodeError(t *testing.T, resp *http.Response) serverutil.ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var body serverutil.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	return body
}

// TestStormRace floods the server with concurrent adds, queries, stats
// and snapshot downloads. Run under -race this is the concurrency proof
// for the RWMutex refactor: queries and snapshots share the read lock
// while adds interleave under the write lock.
func TestStormRace(t *testing.T) {
	_, ts := newConfiguredServer(t, Config{MaxInflight: 256})
	table := paperdata.Table1()
	const writers, readers, rounds = 4, 8, 20

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tokens := append([]string{fmt.Sprintf("w%d-%d", w, i)}, table[i%len(table)]...)
				r := post(t, ts.URL+"/objects", map[string]any{"tokens": tokens}, nil)
				if r.StatusCode != http.StatusOK {
					t.Errorf("add: status %d", r.StatusCode)
				}
			}
		}(w)
	}
	for q := 0; q < readers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					r := post(t, ts.URL+"/query", map[string]any{"tokens": table[i%len(table)]}, nil)
					if r.StatusCode != http.StatusOK {
						t.Errorf("query: status %d", r.StatusCode)
					}
				case 1:
					resp, err := http.Get(ts.URL + "/snapshot")
					if err != nil {
						t.Error(err)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("snapshot: status %d", resp.StatusCode)
					}
					resp.Body.Close()
				default:
					resp, err := http.Get(ts.URL + "/stats")
					if err != nil {
						t.Error(err)
						continue
					}
					resp.Body.Close()
				}
			}
		}(q)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if got := st["objects"].(float64); got != writers*rounds {
		t.Errorf("objects = %v, want %d", got, writers*rounds)
	}
}

// TestSaturationSheds429 fills every admission slot directly and checks
// the next request is shed with 429 + Retry-After instead of queueing.
func TestSaturationSheds429(t *testing.T) {
	s, ts := newConfiguredServer(t, Config{MaxInflight: 2})
	for i := 0; i < 2; i++ {
		if !s.sem.TryAcquire() {
			t.Fatal("could not pre-fill semaphore")
		}
	}
	defer func() {
		s.sem.Release()
		s.sem.Release()
	}()
	r := post(t, ts.URL+"/query", map[string]any{"tokens": []string{"KFC"}}, nil)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Health probes are exempt from admission control.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation: status %d", resp.StatusCode)
	}
}

func TestOversizedBody400(t *testing.T) {
	_, ts := newConfiguredServer(t, Config{MaxBodyBytes: 256})
	big := map[string]any{"tokens": []string{strings.Repeat("a", 1000)}}
	b, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/objects", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if body := decodeError(t, resp); body.Code != "body_too_large" {
		t.Errorf("code = %q, want body_too_large", body.Code)
	}
}

func TestInvalidInput400(t *testing.T) {
	_, ts := newConfiguredServer(t, Config{MaxTokens: 4, MaxTokenLen: 16})
	cases := []struct {
		name string
		url  string
		body any
		code string
	}{
		{"empty object", "/objects", map[string]any{"tokens": []string{}}, "invalid_input"},
		{"empty token", "/objects", map[string]any{"tokens": []string{"KFC", ""}}, "invalid_input"},
		{"too many tokens", "/objects", map[string]any{"tokens": []string{"a", "b", "c", "d", "e"}}, "too_many_tokens"},
		{"token too long", "/query", map[string]any{"tokens": []string{strings.Repeat("x", 17)}}, "token_too_long"},
		{"empty query", "/query", map[string]any{"tokens": []string{}}, "invalid_input"},
		{"similarity empty x", "/similarity", map[string]any{"x": []string{}, "y": []string{"KFC"}}, "invalid_input"},
	}
	for _, tc := range cases {
		b, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+tc.url, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		if body := decodeError(t, resp); body.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, body.Code, tc.code)
		}
	}
	// Nothing invalid was indexed.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["objects"].(float64) != 0 {
		t.Errorf("invalid objects were indexed: %v", st["objects"])
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newConfiguredServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	s.SetDraining(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: status %d, want 503", resp.StatusCode)
	}
	if body := decodeError(t, resp); body.Code != "draining" {
		t.Errorf("code = %q", body.Code)
	}
	// Liveness is unaffected by draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestRequestTimeout503(t *testing.T) {
	// A 1ns deadline is already expired when the handler reaches the
	// engine; the join aborts and the server answers 503.
	_, ts := newConfiguredServer(t, Config{RequestTimeout: time.Nanosecond})
	r := post(t, ts.URL+"/objects", map[string]any{"tokens": []string{"KFC"}}, nil)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", r.StatusCode)
	}
}

func TestSnapshotToAtomic(t *testing.T) {
	s, ts := newConfiguredServer(t, Config{})
	for _, o := range paperdata.Table1() {
		post(t, ts.URL+"/objects", map[string]any{"tokens": o}, nil)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := s.SnapshotTo(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, _ := paperdata.Fig1()
	ix, err := core.LoadIndexer(h, core.Defaults(0.7, 0.6), f)
	if err != nil {
		t.Fatalf("snapshot does not load: %v", err)
	}
	if ix.Len() != len(paperdata.Table1()) {
		t.Errorf("restored %d objects, want %d", ix.Len(), len(paperdata.Table1()))
	}
	// A second snapshot overwrites atomically and leaves no temp files.
	if err := s.SnapshotTo(path); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("snapshot dir has %d entries, want 1", len(entries))
	}
}

// TestSnapshotStreamDoesNotBlockWriters starts a snapshot download that
// reads slowly and checks an add completes while the download is still
// in flight — the snapshot was buffered under the read lock and the
// lock released before streaming.
func TestSnapshotStreamDoesNotBlockWriters(t *testing.T) {
	_, ts := newConfiguredServer(t, Config{})
	for _, o := range paperdata.Table1() {
		post(t, ts.URL+"/objects", map[string]any{"tokens": o}, nil)
	}
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read one byte and then stall the download while adding.
	one := make([]byte, 1)
	if _, err := resp.Body.Read(one); err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	go func() {
		r := post(t, ts.URL+"/objects", map[string]any{"tokens": []string{"KFC", "SanFrancisco"}}, nil)
		done <- r.StatusCode
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Errorf("add during snapshot download: status %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("add blocked behind an unread snapshot download")
	}
}

func TestConcurrentAddIDsAreUnique(t *testing.T) {
	_, ts := newConfiguredServer(t, Config{MaxInflight: 64})
	const n = 32
	ids := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp struct {
				ID int `json:"id"`
			}
			r := post(t, ts.URL+"/objects", map[string]any{"tokens": []string{fmt.Sprintf("tok%d", i), "KFC"}}, &resp)
			if r.StatusCode != http.StatusOK {
				t.Errorf("status %d", r.StatusCode)
				return
			}
			ids <- resp.ID
		}(i)
	}
	wg.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %d returned to two clients", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Errorf("got %d distinct ids, want %d", len(seen), n)
	}
}
