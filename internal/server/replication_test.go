package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"kjoin/internal/core"
	"kjoin/internal/fault"
	"kjoin/internal/paperdata"
	"kjoin/internal/serverutil"
	"kjoin/internal/wal"
)

// newDurablePrimary boots a durable primary in a temp dir and returns
// the server plus its test listener. keep <= 0 selects the default
// generation retention.
func newDurablePrimary(t *testing.T, keep int) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	h, _ := paperdata.Fig1()
	s, err := Recover(h, core.Defaults(0.7, 0.6), Config{Logf: t.Logf}, Durability{
		WALDir:      filepath.Join(dir, "wal"),
		SnapshotDir: filepath.Join(dir, "snap"),
		Keep:        keep,
		Policy:      wal.SyncAlways,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func addObject(t *testing.T, url string, tokens []string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tokens": tokens})
	resp, err := http.Post(url+"/objects", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: status %d", resp.StatusCode)
	}
}

func errCode(t *testing.T, resp *http.Response) string {
	t.Helper()
	var eb serverutil.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return eb.Code
}

func TestWALStreamServesDurableFrames(t *testing.T) {
	_, ts := newDurablePrimary(t, 0)
	objs := paperdata.Table1()
	for _, o := range objs[:4] {
		addObject(t, ts.URL, o)
	}
	resp, err := http.Get(ts.URL + "/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderDurableSeq); got != "4" {
		t.Fatalf("durable header %q, want 4", got)
	}
	dec := wal.NewStreamDecoder(resp.Body)
	var seqs []uint64
	for {
		seq, _, tokens, derr := dec.Next()
		if errors.Is(derr, io.EOF) {
			break
		}
		if derr != nil {
			t.Fatal(derr)
		}
		if len(tokens) != len(objs[seq-1]) {
			t.Fatalf("seq %d carried %d tokens, want %d", seq, len(tokens), len(objs[seq-1]))
		}
		seqs = append(seqs, seq)
	}
	if len(seqs) != 4 || seqs[0] != 1 || seqs[3] != 4 {
		t.Fatalf("streamed seqs %v, want 1..4", seqs)
	}
}

func TestWALStreamRejectsBadParams(t *testing.T) {
	_, ts := newDurablePrimary(t, 0)
	for _, tc := range []struct{ query, code string }{
		{"", "bad_from"},
		{"?from=0", "bad_from"},
		{"?from=abc", "bad_from"},
		{"?from=1&wait=banana", "bad_wait"},
		{"?from=1&wait=-5s", "bad_wait"},
	} {
		resp, err := http.Get(ts.URL + "/wal/stream" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		code := errCode(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || code != tc.code {
			t.Errorf("%q: status %d code %q, want 400 %s", tc.query, resp.StatusCode, code, tc.code)
		}
	}
}

func TestWALStreamWithoutDurability(t *testing.T) {
	h, _ := paperdata.Fig1()
	s, err := New(h, core.Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	code := errCode(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || code != "replication_unavailable" {
		t.Fatalf("status %d code %q, want 503 replication_unavailable", resp.StatusCode, code)
	}
}

// TestWALStreamCompactionGone proves a follower is never silently
// stranded: once compaction deletes the records it needs, the stream
// answers 410 with the floor, and reading from the floor works.
func TestWALStreamCompactionGone(t *testing.T) {
	s, ts := newDurablePrimary(t, 1)
	for _, o := range paperdata.Table1() {
		addObject(t, ts.URL, o)
	}
	// With a single retained generation, each snapshot floors the WAL at
	// the sequence it covers.
	if err := s.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}
	for _, o := range paperdata.Table1() {
		addObject(t, ts.URL, o)
	}
	if err := s.SnapshotGeneration(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	floorHdr := resp.Header.Get(HeaderWALFloor)
	code := errCode(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone || code != "wal_compacted" {
		t.Fatalf("status %d code %q, want 410 wal_compacted", resp.StatusCode, code)
	}
	floor, err := strconv.ParseUint(floorHdr, 10, 64)
	if err != nil || floor <= 1 {
		t.Fatalf("floor header %q, want a sequence past 1", floorHdr)
	}
	// At the advertised floor the stream serves again (possibly empty).
	resp, err = http.Get(fmt.Sprintf("%s/wal/stream?from=%d", ts.URL, floor))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read from advertised floor %d: status %d", floor, resp.StatusCode)
	}
}

// TestWALStreamLongPollDeliversNewRecord starts a wait-ing stream
// request with nothing to serve, then adds an object; the poll must
// return it well before the wait expires.
func TestWALStreamLongPollDeliversNewRecord(t *testing.T) {
	_, ts := newDurablePrimary(t, 0)
	addObject(t, ts.URL, paperdata.Table1()[0])
	type result struct {
		seqs []uint64
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/wal/stream?from=2&wait=10s")
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		dec := wal.NewStreamDecoder(resp.Body)
		var seqs []uint64
		for {
			seq, _, _, derr := dec.Next()
			if errors.Is(derr, io.EOF) {
				ch <- result{seqs: seqs}
				return
			}
			if derr != nil {
				ch <- result{err: derr}
				return
			}
			seqs = append(seqs, seq)
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	addObject(t, ts.URL, paperdata.Table1()[1])
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.seqs) != 1 || res.seqs[0] != 2 {
			t.Fatalf("long poll delivered %v, want [2]", res.seqs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll did not return after a record became available")
	}
}

func TestReplicaSnapshotEndpointRoundTrips(t *testing.T) {
	_, ts := newDurablePrimary(t, 0)
	for _, o := range paperdata.Table1() {
		addObject(t, ts.URL, o)
	}
	resp, err := http.Get(ts.URL + "/replica/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	n := len(paperdata.Table1())
	if got := resp.Header.Get(HeaderDurableSeq); got != strconv.Itoa(n) {
		t.Fatalf("durable header %q, want %d", got, n)
	}
	h, _ := paperdata.Fig1()
	ix, meta, err := core.LoadIndexerMeta(h, core.Defaults(0.7, 0.6), resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != n || meta.WALSeq != uint64(n) {
		t.Fatalf("snapshot has %d objects at seq %d, want %d at %d", ix.Len(), meta.WALSeq, n, n)
	}
}

// TestReplicaServerIsReadOnly proves a follower rejects writes and
// gates queries until its first catch-up.
func TestReplicaServerIsReadOnly(t *testing.T) {
	h, _ := paperdata.Fig1()
	s, err := NewReplica(h, core.Defaults(0.7, 0.6), Config{}, ReplicaConfig{Bound: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{"tokens": []string{"burgerking"}})
	resp, err := http.Post(ts.URL+"/objects", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	code := errCode(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || code != "read_only_replica" {
		t.Fatalf("add on replica: status %d code %q, want 403 read_only_replica", resp.StatusCode, code)
	}
	// Not ready (never caught up): queries and readyz answer 503.
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	code = errCode(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || code != "recovering" {
		t.Fatalf("query before catch-up: status %d code %q", resp.StatusCode, code)
	}
	// After catch-up the replica serves.
	s.MarkReplicaCaughtUp(time.Now())
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	lagHdr := resp.Header.Get(HeaderReplicaLag)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after catch-up: status %d", resp.StatusCode)
	}
	if lagHdr == "" || lagHdr == "-1" {
		t.Fatalf("lag header %q, want a non-negative millisecond count", lagHdr)
	}
}

// TestReplicaStalenessGate proves both staleness modes: reject answers
// 503 once the bound is exceeded, mark serves with the lag header.
func TestReplicaStalenessGate(t *testing.T) {
	h, _ := paperdata.Fig1()
	body, _ := json.Marshal(map[string]any{"tokens": []string{"burgerking"}})
	for _, mode := range []StalenessMode{StaleReject, StaleMark} {
		s, err := NewReplica(h, core.Defaults(0.7, 0.6), Config{}, ReplicaConfig{Bound: 10 * time.Millisecond, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		// Caught up far in the past: lag is way over the 10ms bound.
		s.MarkReplicaCaughtUp(time.Now().Add(-time.Second))
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		lagHdr := resp.Header.Get(HeaderReplicaLag)
		if mode == StaleReject {
			code := errCode(t, resp)
			if resp.StatusCode != http.StatusServiceUnavailable || code != "stale_replica" {
				t.Fatalf("reject mode: status %d code %q, want 503 stale_replica", resp.StatusCode, code)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mark mode: status %d, want 200", resp.StatusCode)
			}
		}
		resp.Body.Close()
		if ms, perr := strconv.ParseInt(lagHdr, 10, 64); perr != nil || ms < 1000 {
			t.Fatalf("lag header %q, want >= 1000ms", lagHdr)
		}
		ts.Close()
	}
}

func TestReplicaStatsFields(t *testing.T) {
	h, _ := paperdata.Fig1()
	s, err := NewReplica(h, core.Defaults(0.7, 0.6), Config{}, ReplicaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	stats := func() map[string]any {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := stats()
	if m["replica_lag"] != float64(-1) || m["replica_healthy"] != false || m["replica_applied_seq"] != float64(0) {
		t.Fatalf("fresh replica stats: lag=%v healthy=%v applied=%v", m["replica_lag"], m["replica_healthy"], m["replica_applied_seq"])
	}
	if err := s.ApplyReplicated(1, wal.OpAdd, []string{"burgerking"}); err != nil {
		t.Fatal(err)
	}
	s.MarkReplicaCaughtUp(time.Now())
	m = stats()
	lag, ok := m["replica_lag"].(float64)
	if !ok || lag < 0 {
		t.Fatalf("caught-up replica_lag = %v, want >= 0", m["replica_lag"])
	}
	if m["replica_healthy"] != true || m["replica_applied_seq"] != float64(1) {
		t.Fatalf("caught-up stats: healthy=%v applied=%v", m["replica_healthy"], m["replica_applied_seq"])
	}
	if m["objects"] != float64(1) {
		t.Fatalf("objects = %v, want 1", m["objects"])
	}
}

// TestApplyReplicatedEnforcesContiguity: a gap means lost records and
// must refuse, exactly like recovery replay.
func TestApplyReplicatedEnforcesContiguity(t *testing.T) {
	h, _ := paperdata.Fig1()
	s, err := NewReplica(h, core.Defaults(0.7, 0.6), Config{}, ReplicaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicated(1, wal.OpAdd, []string{"kfc"}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicated(3, wal.OpAdd, []string{"burgerking"}); err == nil {
		t.Fatal("applying seq 3 after seq 1 succeeded; contiguity not enforced")
	}
	if got := s.ReplicaAppliedSeq(); got != 1 {
		t.Fatalf("applied seq %d after refused gap, want 1", got)
	}
}

// TestSnapshotBufferRefusesPoisonedWAL mirrors SnapshotGeneration's
// contract on the replication bootstrap path.
func TestSnapshotBufferRefusesPoisonedWAL(t *testing.T) {
	dir := t.TempDir()
	h, _ := paperdata.Fig1()
	inj := fault.NewInjector(fault.OS{}, fault.Fault{Op: fault.OpSync, Path: "wal", N: 2, Mode: fault.Fail})
	s, err := Recover(h, core.Defaults(0.7, 0.6), Config{Logf: t.Logf}, Durability{
		FS:          inj,
		WALDir:      filepath.Join(dir, "wal"),
		SnapshotDir: filepath.Join(dir, "snap"),
		Policy:      wal.SyncAlways,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()
	addObject(t, ts.URL, []string{"burgerking"})
	// The second fsync fails and poisons the log.
	body, _ := json.Marshal(map[string]any{"tokens": []string{"kfc"}})
	resp, err := http.Post(ts.URL+"/objects", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("add during injected fsync failure was acknowledged")
	}
	if _, _, err := s.SnapshotBuffer(); err == nil || !strings.Contains(err.Error(), "refusing snapshot") {
		t.Fatalf("SnapshotBuffer on poisoned wal: %v, want refusal", err)
	}
}

// TestStreamPollJitterBandAndDeterminism: the long-poll re-check pause
// is uniform in [interval/2, 3·interval/2) — never zero, never a fixed
// tick a follower fleet could align on — and deterministic per seed so
// replication tests stay reproducible.
func TestStreamPollJitterBandAndDeterminism(t *testing.T) {
	h, _ := paperdata.Fig1()
	mk := func(seed uint64) *Server {
		s, err := NewWithConfig(h, core.Defaults(0.7, 0.6), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b, c := mk(7), mk(7), mk(8)
	lo, hi := streamPollInterval/2, streamPollInterval+streamPollInterval/2
	var distinct, diverged bool
	first := time.Duration(-1)
	for i := 0; i < 200; i++ {
		da, db, dc := a.streamPollJitter(), b.streamPollJitter(), c.streamPollJitter()
		if da < lo || da >= hi {
			t.Fatalf("pause %d: %v outside [%v, %v)", i, da, lo, hi)
		}
		if da != db {
			t.Fatalf("pause %d: same seed diverged: %v vs %v", i, da, db)
		}
		if first == -1 {
			first = da
		} else if da != first {
			distinct = true
		}
		if da != dc {
			diverged = true
		}
	}
	if !distinct {
		t.Fatal("200 pauses were all identical; the poll is an aligned fixed tick")
	}
	if !diverged {
		t.Fatal("different seeds produced identical pause sequences")
	}
}
