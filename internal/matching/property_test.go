package matching

import (
	"math/rand"
	"testing"

	"kjoin/internal/mathx"
)

// randomBigraph draws a bigraph with edge weights in (0, 1], mimicking
// the δ-thresholded element-similarity graphs verification builds:
// K-Join only materializes edges with weight ≥ δ > 0.
func randomBigraph(r *rand.Rand) (nx, ny int, edges []Edge) {
	nx = 1 + r.Intn(8)
	ny = 1 + r.Intn(8)
	density := 0.1 + 0.8*r.Float64()
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if r.Float64() < density {
				// Weight in (0, 1]; occasionally duplicated edges to
				// exercise the max-weight dedup in MaxWeight.
				w := 0.05 + 0.95*r.Float64()
				edges = append(edges, Edge{X: x, Y: y, W: w})
				if r.Intn(10) == 0 {
					edges = append(edges, Edge{X: x, Y: y, W: w / 2})
				}
			}
		}
	}
	return nx, ny, edges
}

// TestBoundsSandwichDenseGraphs is the §5.2 invariant the adaptive
// verifier's early accept/reject depends on: for any bigraph, every
// cheap lower bound is at most the exact Hungarian weight, which is at
// most the row/column upper bound of Equation 6. It complements the
// quick.Check sandwich test in matching_test.go with larger, denser
// graphs, duplicated edges, and a validity cross-check of the reported
// matching itself. A violation here means the adaptive verifier can
// return wrong join results.
func TestBoundsSandwichDenseGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 2000; trial++ {
		nx, ny, edges := randomBigraph(r)
		exact, matchX := MaxWeight(nx, ny, edges)
		lw := GreedyMaxWeight(edges)
		le := GreedyMinDegree(nx, ny, edges)
		lb := LowerBound(nx, ny, edges)
		ub := UpperBound(nx, ny, edges)

		if !mathx.GE(exact, lw) {
			t.Fatalf("trial %d: greedy max-weight bound %v exceeds exact %v (nx=%d ny=%d edges=%v)", trial, lw, exact, nx, ny, edges)
		}
		if !mathx.GE(exact, le) {
			t.Fatalf("trial %d: greedy min-degree bound %v exceeds exact %v (nx=%d ny=%d edges=%v)", trial, le, exact, nx, ny, edges)
		}
		if !mathx.GE(exact, lb) || !mathx.GE(lb, lw) || !mathx.GE(lb, le) {
			t.Fatalf("trial %d: combined lower bound %v inconsistent (lw=%v le=%v exact=%v)", trial, lb, lw, le, exact)
		}
		if !mathx.GE(ub, exact) {
			t.Fatalf("trial %d: upper bound %v below exact %v (nx=%d ny=%d edges=%v)", trial, ub, exact, nx, ny, edges)
		}

		// The reported matching must itself be valid and account for
		// the reported weight: no right vertex matched twice, and the
		// sum of matched edge weights equals the total.
		usedY := make(map[int]bool)
		sum := 0.0
		for x, y := range matchX {
			if y < 0 {
				continue
			}
			if usedY[y] {
				t.Fatalf("trial %d: right vertex %d matched twice", trial, y)
			}
			usedY[y] = true
			best := 0.0
			for _, e := range edges {
				if e.X == x && e.Y == y && e.W > best {
					best = e.W
				}
			}
			if best == 0 {
				t.Fatalf("trial %d: matching uses nonexistent edge (%d,%d)", trial, x, y)
			}
			sum += best
		}
		if !mathx.Eq(sum, exact) {
			t.Fatalf("trial %d: matched edge weights sum to %v but MaxWeight reported %v", trial, sum, exact)
		}
	}
}

// TestBoundsDegenerate pins the empty and edgeless cases the random
// trials rarely produce.
func TestBoundsDegenerate(t *testing.T) {
	for _, tc := range []struct{ nx, ny int }{{0, 0}, {0, 3}, {3, 0}, {1, 1}, {5, 2}} {
		exact, _ := MaxWeight(tc.nx, tc.ny, nil)
		if exact != 0 {
			t.Fatalf("MaxWeight(%d,%d,nil) = %v, want 0", tc.nx, tc.ny, exact)
		}
		if lb := LowerBound(tc.nx, tc.ny, nil); lb != 0 {
			t.Fatalf("LowerBound(%d,%d,nil) = %v, want 0", tc.nx, tc.ny, lb)
		}
		if ub := UpperBound(tc.nx, tc.ny, nil); ub != 0 {
			t.Fatalf("UpperBound(%d,%d,nil) = %v, want 0", tc.nx, tc.ny, ub)
		}
	}
}
