package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMax computes the exact maximum-weight matching by enumerating all
// assignments of left vertices (nx small).
func bruteMax(nx, ny int, edges []Edge) float64 {
	w := make(map[[2]int]float64)
	for _, e := range edges {
		k := [2]int{e.X, e.Y}
		if e.W > w[k] {
			w[k] = e.W
		}
	}
	usedY := make([]bool, ny)
	var rec func(x int) float64
	rec = func(x int) float64 {
		if x == nx {
			return 0
		}
		best := rec(x + 1) // leave x unmatched
		for y := 0; y < ny; y++ {
			if usedY[y] {
				continue
			}
			if wt, ok := w[[2]int{x, y}]; ok && wt > 0 {
				usedY[y] = true
				if v := wt + rec(x+1); v > best {
					best = v
				}
				usedY[y] = false
			}
		}
		return best
	}
	return rec(0)
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMaxWeightPaperBigraph(t *testing.T) {
	// Figure 2: S1 = {BurgerKing, MountainView}, S4 = {PizzaHut, KFC, CA},
	// δ=0.5. Edges: BurgerKing–PizzaHut 0.5, BurgerKing–KFC 0.75,
	// MountainView–CA 0.6. Fuzzy overlap = 0.75 + 0.6 = 27/20.
	edges := []Edge{
		{X: 0, Y: 0, W: 0.5},  // BurgerKing–PizzaHut
		{X: 0, Y: 1, W: 0.75}, // BurgerKing–KFC
		{X: 1, Y: 2, W: 0.6},  // MountainView–CA
	}
	total, matchX := MaxWeight(2, 3, edges)
	if !almostEq(total, 27.0/20) {
		t.Errorf("fuzzy overlap = %v, want 27/20", total)
	}
	if matchX[0] != 1 || matchX[1] != 2 {
		t.Errorf("matchX = %v, want [1 2]", matchX)
	}
}

func TestMaxWeightEmpty(t *testing.T) {
	total, m := MaxWeight(0, 0, nil)
	if total != 0 || len(m) != 0 {
		t.Errorf("empty graph: got %v, %v", total, m)
	}
	total, m = MaxWeight(3, 2, nil)
	if total != 0 || len(m) != 3 || m[0] != -1 || m[1] != -1 || m[2] != -1 {
		t.Errorf("no edges: got %v, %v", total, m)
	}
}

func TestMaxWeightConflict(t *testing.T) {
	// Two left vertices want the same right vertex; the matching must not
	// reuse it and must prefer the globally best assignment.
	edges := []Edge{
		{X: 0, Y: 0, W: 0.9},
		{X: 1, Y: 0, W: 0.8},
		{X: 1, Y: 1, W: 0.5},
	}
	total, matchX := MaxWeight(2, 2, edges)
	if !almostEq(total, 1.4) {
		t.Errorf("total = %v, want 1.4", total)
	}
	if matchX[0] != 0 || matchX[1] != 1 {
		t.Errorf("matchX = %v, want [0 1]", matchX)
	}
	// Swap: now the optimum leaves one vertex unmatched on the heavy side.
	edges = []Edge{
		{X: 0, Y: 0, W: 0.4},
		{X: 1, Y: 0, W: 0.9},
	}
	total, _ = MaxWeight(2, 1, edges)
	if !almostEq(total, 0.9) {
		t.Errorf("total = %v, want 0.9", total)
	}
}

func TestMaxWeightDuplicateEdges(t *testing.T) {
	// Duplicate (X,Y) pairs keep the max weight.
	edges := []Edge{{0, 0, 0.3}, {0, 0, 0.7}, {0, 0, 0.5}}
	total, _ := MaxWeight(1, 1, edges)
	if !almostEq(total, 0.7) {
		t.Errorf("total = %v, want 0.7", total)
	}
}

func randEdges(r *rand.Rand, nx, ny int) []Edge {
	var es []Edge
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if r.Float64() < 0.45 {
				// Weights in (0.05, 1.0] quantized to avoid float ambiguity.
				w := float64(1+r.Intn(20)) / 20
				es = append(es, Edge{x, y, w})
			}
		}
	}
	return es
}

func TestMaxWeightAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx, ny := 1+r.Intn(6), 1+r.Intn(6)
		es := randEdges(r, nx, ny)
		got, matchX := MaxWeight(nx, ny, es)
		want := bruteMax(nx, ny, es)
		if !almostEq(got, want) {
			t.Logf("seed %d: hungarian %v vs brute %v (nx=%d ny=%d edges=%v)", seed, got, want, nx, ny, es)
			return false
		}
		// The reported matching must be consistent: distinct Ys, weights sum to total.
		seen := map[int]bool{}
		sum := 0.0
		wmap := map[[2]int]float64{}
		for _, e := range es {
			k := [2]int{e.X, e.Y}
			if e.W > wmap[k] {
				wmap[k] = e.W
			}
		}
		for x, y := range matchX {
			if y < 0 {
				continue
			}
			if seen[y] {
				return false
			}
			seen[y] = true
			sum += wmap[[2]int{x, y}]
		}
		return almostEq(sum, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBoundsSandwichProperty(t *testing.T) {
	// lower bounds <= exact <= upper bound, always.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx, ny := 1+r.Intn(7), 1+r.Intn(7)
		es := randEdges(r, nx, ny)
		exact, _ := MaxWeight(nx, ny, es)
		lw := GreedyMaxWeight(es)
		le := GreedyMinDegree(nx, ny, es)
		lb := LowerBound(nx, ny, es)
		ub := UpperBound(nx, ny, es)
		const eps = 1e-9
		return lw <= exact+eps && le <= exact+eps &&
			lb <= exact+eps && exact <= ub+eps &&
			lb >= lw-eps && lb >= le-eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMaxWeight(t *testing.T) {
	// Greedy picks 1.0 then cannot take the two 0.9s that the optimum picks.
	es := []Edge{{0, 0, 1.0}, {0, 1, 0.9}, {1, 0, 0.9}}
	if got := GreedyMaxWeight(es); !almostEq(got, 1.0) {
		t.Errorf("GreedyMaxWeight = %v, want 1.0", got)
	}
	exact, _ := MaxWeight(2, 2, es)
	if !almostEq(exact, 1.8) {
		t.Errorf("exact = %v, want 1.8", exact)
	}
	if GreedyMaxWeight(nil) != 0 {
		t.Error("empty greedy should be 0")
	}
}

func TestGreedyMinDegree(t *testing.T) {
	// Min-degree covers both left vertices where pure max-weight might not.
	es := []Edge{{0, 0, 0.6}, {1, 0, 0.9}, {1, 1, 0.5}}
	got := GreedyMinDegree(2, 2, es)
	// x=0 has degree 1, matched first to y=0 (its only neighbour), then
	// x=1 must take y=1: total 0.6+0.5 = 1.1.
	if !almostEq(got, 1.1) {
		t.Errorf("GreedyMinDegree = %v, want 1.1", got)
	}
	if GreedyMinDegree(0, 0, nil) != 0 {
		t.Error("empty graph should be 0")
	}
}

func TestUpperBoundPaperExample(t *testing.T) {
	// §5.2.1: group {SanFrancisco, Manhattan, Brooklyn} vs {PaloAlto,
	// MountainView, NewYork}, all max edge weights 4/5 → bound 12/5.
	es := []Edge{}
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			es = append(es, Edge{x, y, 0.8})
		}
	}
	if got := UpperBound(3, 3, es); !almostEq(got, 12.0/5) {
		t.Errorf("UpperBound = %v, want 12/5", got)
	}
	if UpperBound(2, 2, nil) != 0 {
		t.Error("empty upper bound should be 0")
	}
}

func BenchmarkMaxWeight10x10(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	es := randEdges(r, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeight(10, 10, es)
	}
}

func BenchmarkMaxWeight30x30(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	es := randEdges(r, 30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeight(30, 30, es)
	}
}
