// Package matching implements maximum-weight bipartite matching and the
// cheap bounds K-Join's adaptive verification relies on (paper §2.1.2 and
// §5.2): an exact Hungarian solver for the fuzzy overlap, the two greedy
// lower bounds (maximum weight and maximum degree), and the row/column
// upper bound of Equation 6.
//
// The package-level functions allocate their workspace per call. The hot
// path — verification of millions of candidate pairs — uses a reusable
// Solver instead (see solver.go), which owns the same workspace, grows it
// monotonically, and runs allocation-free at steady state. The functions
// here are thin wrappers over a fresh Solver, so both forms compute
// bit-identical results.
package matching

// Edge is a weighted edge between left vertex X and right vertex Y of a
// bigraph. K-Join only creates edges with weight >= δ > 0.
type Edge struct {
	X, Y int
	W    float64
}

// MaxWeight computes the maximum-weight matching of the bigraph with nx
// left vertices, ny right vertices and the given edges (missing pairs have
// weight 0 and are never matched). It returns the total weight and, for
// each left vertex, the matched right vertex or -1.
//
// The solver is the O(n³) Hungarian algorithm with dual potentials on a
// dense padded square matrix. Vertices left unmatched cost nothing, so the
// result equals the maximum-weight (not necessarily perfect) matching —
// exactly the fuzzy overlap ||Sx ∩̃δ Sy|| of Definition 2.
func MaxWeight(nx, ny int, edges []Edge) (float64, []int) {
	var s Solver
	return s.MaxWeightMatch(nx, ny, edges, nil)
}

// GreedyMaxWeight returns the lower bound l_w of §5.2.2: repeatedly pick
// the heaviest remaining edge, match its endpoints, and remove them. The
// result is the weight of a valid matching, hence a lower bound on the
// maximum. Ties break on (X, Y) for determinism.
func GreedyMaxWeight(edges []Edge) float64 {
	var s Solver
	return s.GreedyMaxWeight(edges)
}

// GreedyMinDegree returns the lower bound l_e of §5.2.2: repeatedly take
// the left vertex with the smallest remaining degree, match it to its
// neighbour with the smallest degree, and delete both. Covering
// low-degree vertices first tends to cover more vertices overall.
func GreedyMinDegree(nx, ny int, edges []Edge) float64 {
	var s Solver
	return s.GreedyMinDegree(nx, ny, edges)
}

// LowerBound returns the combined lower bound of §5.2.2:
// max(GreedyMaxWeight, GreedyMinDegree).
func LowerBound(nx, ny int, edges []Edge) float64 {
	var s Solver
	return s.LowerBound(nx, ny, edges)
}

// UpperBound returns the bound B^u of Equation 6: the smaller of the sum
// of per-left-vertex maximum edge weights and the sum of per-right-vertex
// maximum edge weights. Any matching weight is at most both sums.
func UpperBound(nx, ny int, edges []Edge) float64 {
	var s Solver
	return s.UpperBound(nx, ny, edges)
}
