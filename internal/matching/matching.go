// Package matching implements maximum-weight bipartite matching and the
// cheap bounds K-Join's adaptive verification relies on (paper §2.1.2 and
// §5.2): an exact Hungarian solver for the fuzzy overlap, the two greedy
// lower bounds (maximum weight and maximum degree), and the row/column
// upper bound of Equation 6.
package matching

import (
	"sort"

	"kjoin/internal/mathx"
)

// Edge is a weighted edge between left vertex X and right vertex Y of a
// bigraph. K-Join only creates edges with weight >= δ > 0.
type Edge struct {
	X, Y int
	W    float64
}

// MaxWeight computes the maximum-weight matching of the bigraph with nx
// left vertices, ny right vertices and the given edges (missing pairs have
// weight 0 and are never matched). It returns the total weight and, for
// each left vertex, the matched right vertex or -1.
//
// The solver is the O(n³) Hungarian algorithm with dual potentials on a
// dense padded square matrix. Vertices left unmatched cost nothing, so the
// result equals the maximum-weight (not necessarily perfect) matching —
// exactly the fuzzy overlap ||Sx ∩̃δ Sy|| of Definition 2.
func MaxWeight(nx, ny int, edges []Edge) (float64, []int) {
	if nx == 0 || ny == 0 || len(edges) == 0 {
		m := make([]int, nx)
		for i := range m {
			m[i] = -1
		}
		return 0, m
	}
	n := nx
	if ny > n {
		n = ny
	}
	// cost[i][j] = -w so that minimizing total cost maximizes weight.
	cost := make([][]float64, n+1)
	flat := make([]float64, (n+1)*(n+1))
	for i := range cost {
		cost[i] = flat[i*(n+1) : (i+1)*(n+1)]
	}
	for _, e := range edges {
		if e.W > -cost[e.X+1][e.Y+1] {
			cost[e.X+1][e.Y+1] = -e.W
		}
	}

	const inf = 1e18
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j]: row assigned to column j (1-based), 0 if none
	way := make([]int, n+1) // way[j]: previous column on the alternating path
	minv := make([]float64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	matchX := make([]int, nx)
	for i := range matchX {
		matchX[i] = -1
	}
	total := 0.0
	for j := 1; j <= n; j++ {
		i := p[j]
		if i == 0 || i > nx || j > ny {
			continue
		}
		w := -cost[i][j]
		if w > 0 {
			matchX[i-1] = j - 1
			total += w
		}
	}
	return total, matchX
}

// GreedyMaxWeight returns the lower bound l_w of §5.2.2: repeatedly pick
// the heaviest remaining edge, match its endpoints, and remove them. The
// result is the weight of a valid matching, hence a lower bound on the
// maximum. Ties break on (X, Y) for determinism.
func GreedyMaxWeight(edges []Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	es := append([]Edge(nil), edges...)
	sort.Slice(es, func(i, j int) bool {
		if c := mathx.Cmp(es[i].W, es[j].W); c != 0 {
			return c > 0
		}
		if es[i].X != es[j].X {
			return es[i].X < es[j].X
		}
		return es[i].Y < es[j].Y
	})
	usedX := map[int]bool{}
	usedY := map[int]bool{}
	total := 0.0
	for _, e := range es {
		if usedX[e.X] || usedY[e.Y] {
			continue
		}
		usedX[e.X] = true
		usedY[e.Y] = true
		total += e.W
	}
	return total
}

// GreedyMinDegree returns the lower bound l_e of §5.2.2: repeatedly take
// the left vertex with the smallest remaining degree, match it to its
// neighbour with the smallest degree, and delete both. Covering
// low-degree vertices first tends to cover more vertices overall.
func GreedyMinDegree(nx, ny int, edges []Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	adjX := make([][]Edge, nx)
	degY := make([]int, ny)
	for _, e := range edges {
		adjX[e.X] = append(adjX[e.X], e)
		degY[e.Y]++
	}
	degX := make([]int, nx)
	for x := range adjX {
		degX[x] = len(adjX[x])
	}
	goneX := make([]bool, nx)
	goneY := make([]bool, ny)
	total := 0.0
	for {
		// Pick live left vertex with the smallest positive degree.
		bestX, bestD := -1, 1<<30
		for x := 0; x < nx; x++ {
			if goneX[x] || degX[x] <= 0 {
				continue
			}
			if degX[x] < bestD {
				bestD = degX[x]
				bestX = x
			}
		}
		if bestX < 0 {
			break
		}
		// Among its live neighbours pick the one with the smallest degree;
		// break ties on weight (heavier first) then index for determinism.
		var pick *Edge
		pickD := 1 << 30
		for i := range adjX[bestX] {
			e := &adjX[bestX][i]
			if goneY[e.Y] {
				continue
			}
			if degY[e.Y] < pickD || (degY[e.Y] == pickD && pick != nil && (e.W > pick.W || (mathx.Cmp(e.W, pick.W) == 0 && e.Y < pick.Y))) {
				pickD = degY[e.Y]
				pick = e
			}
		}
		if pick == nil {
			goneX[bestX] = true
			degX[bestX] = 0
			continue
		}
		total += pick.W
		goneX[bestX] = true
		goneY[pick.Y] = true
		// Update degrees of the survivors touching the removed vertices.
		for x := 0; x < nx; x++ {
			if goneX[x] {
				continue
			}
			d := 0
			for _, e := range adjX[x] {
				if !goneY[e.Y] {
					d++
				}
			}
			degX[x] = d
		}
		for y := 0; y < ny; y++ {
			if goneY[y] {
				continue
			}
			d := 0
			for x := 0; x < nx; x++ {
				if goneX[x] {
					continue
				}
				for _, e := range adjX[x] {
					if e.Y == y {
						d++
					}
				}
			}
			degY[y] = d
		}
	}
	return total
}

// LowerBound returns the combined lower bound of §5.2.2:
// max(GreedyMaxWeight, GreedyMinDegree).
func LowerBound(nx, ny int, edges []Edge) float64 {
	lw := GreedyMaxWeight(edges)
	le := GreedyMinDegree(nx, ny, edges)
	if le > lw {
		return le
	}
	return lw
}

// UpperBound returns the bound B^u of Equation 6: the smaller of the sum
// of per-left-vertex maximum edge weights and the sum of per-right-vertex
// maximum edge weights. Any matching weight is at most both sums.
func UpperBound(nx, ny int, edges []Edge) float64 {
	maxX := make([]float64, nx)
	maxY := make([]float64, ny)
	for _, e := range edges {
		if e.W > maxX[e.X] {
			maxX[e.X] = e.W
		}
		if e.W > maxY[e.Y] {
			maxY[e.Y] = e.W
		}
	}
	sx, sy := 0.0, 0.0
	for _, w := range maxX {
		sx += w
	}
	for _, w := range maxY {
		sy += w
	}
	if sx < sy {
		return sx
	}
	return sy
}
