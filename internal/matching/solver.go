package matching

import (
	"sort"

	"kjoin/internal/mathx"
)

// Solver is a reusable workspace for the package's algorithms: the
// Hungarian maximum-weight matching and the greedy lower / row-column
// upper bounds of §5.2. Every buffer grows monotonically and is reset
// (not freed) per call, so a Solver that has reached its steady-state
// size runs every method without allocating. A Solver is not safe for
// concurrent use; K-Join keeps one per probe worker (inside
// verify.Scratch). The zero value is ready to use.
type Solver struct {
	// Hungarian workspace: dense padded (n+1)×(n+1) cost matrix (flat,
	// row-major) and the dual-potential arrays of the O(n³) algorithm.
	cost []float64
	u    []float64
	v    []float64
	minv []float64
	p    []int
	way  []int
	used []bool

	// Greedy / bound workspace.
	es       edgeSorter // sorted copy of the edges for GreedyMaxWeight
	busyX    []bool     // matched left vertices (GreedyMaxWeight)
	busyY    []bool     // matched right vertices
	adjOff   []int32    // CSR offsets per left vertex (GreedyMinDegree)
	adjEdges []Edge     // CSR edge storage, input order within a vertex
	degX     []int32
	degY     []int32
	goneX    []bool
	goneY    []bool
	maxX     []float64 // per-vertex maxima (UpperBound)
	maxY     []float64
}

// growFloats returns buf with length exactly n, reusing its backing
// array when possible; new or recycled slots are NOT cleared.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growInt32s(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// MaxWeight computes the maximum-weight matching weight of the bigraph
// with nx left vertices, ny right vertices and the given edges. It is
// the allocation-free form of the package-level MaxWeight; use
// MaxWeightMatch when the per-vertex assignment is needed.
func (s *Solver) MaxWeight(nx, ny int, edges []Edge) float64 {
	if nx == 0 || ny == 0 || len(edges) == 0 {
		return 0
	}
	n := s.solve(nx, ny, edges)
	total := 0.0
	for j := 1; j <= n; j++ {
		i := s.p[j]
		if i == 0 || i > nx || j > ny {
			continue
		}
		if w := -s.cost[i*(n+1)+j]; w > 0 {
			total += w
		}
	}
	return total
}

// MaxWeightMatch is MaxWeight but additionally fills matchX (grown if
// needed) with, for each left vertex, the matched right vertex or -1.
func (s *Solver) MaxWeightMatch(nx, ny int, edges []Edge, matchX []int) (float64, []int) {
	matchX = growInts(matchX, nx)
	for i := range matchX {
		matchX[i] = -1
	}
	if nx == 0 || ny == 0 || len(edges) == 0 {
		return 0, matchX
	}
	n := s.solve(nx, ny, edges)
	total := 0.0
	for j := 1; j <= n; j++ {
		i := s.p[j]
		if i == 0 || i > nx || j > ny {
			continue
		}
		if w := -s.cost[i*(n+1)+j]; w > 0 {
			matchX[i-1] = j - 1
			total += w
		}
	}
	return total, matchX
}

// solve runs the Hungarian algorithm on the padded square matrix of
// side n = max(nx, ny), leaving the assignment in s.p and the negated
// weights in s.cost. It mirrors the original package-level MaxWeight
// exactly (same operations in the same order), so results are
// bit-identical to the seed implementation.
func (s *Solver) solve(nx, ny int, edges []Edge) int {
	n := nx
	if ny > n {
		n = ny
	}
	m := (n + 1) * (n + 1)
	s.cost = growFloats(s.cost, m)
	for i := range s.cost {
		s.cost[i] = 0
	}
	// cost[i][j] = -w so that minimizing total cost maximizes weight.
	for _, e := range edges {
		c := &s.cost[(e.X+1)*(n+1)+e.Y+1]
		if e.W > -*c {
			*c = -e.W
		}
	}

	const inf = 1e18
	s.u = growFloats(s.u, n+1)
	s.v = growFloats(s.v, n+1)
	s.minv = growFloats(s.minv, n+1)
	s.p = growInts(s.p, n+1)
	s.way = growInts(s.way, n+1)
	s.used = growBools(s.used, n+1)
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j] = 0, 0
		s.p[j], s.way[j] = 0, 0
	}

	for i := 1; i <= n; i++ {
		s.p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			s.minv[j] = inf
			s.used[j] = false
		}
		for {
			s.used[j0] = true
			i0 := s.p[j0]
			delta := inf
			j1 := 0
			row := s.cost[i0*(n+1) : (i0+1)*(n+1)]
			for j := 1; j <= n; j++ {
				if s.used[j] {
					continue
				}
				cur := row[j] - s.u[i0] - s.v[j]
				if cur < s.minv[j] {
					s.minv[j] = cur
					s.way[j] = j0
				}
				if s.minv[j] < delta {
					delta = s.minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if s.used[j] {
					s.u[s.p[j]] += delta
					s.v[j] -= delta
				} else {
					s.minv[j] -= delta
				}
			}
			j0 = j1
			if s.p[j0] == 0 {
				break
			}
		}
		for {
			j1 := s.way[j0]
			s.p[j0] = s.p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	return n
}

// edgeLess is the deterministic greedy edge order of §5.2.2: heaviest
// first, ties broken on (X, Y). (X, Y) pairs are unique within one
// bigraph, so the order is total and any sort yields one permutation.
func edgeLess(a, b Edge) bool {
	if c := mathx.Cmp(a.W, b.W); c != 0 {
		return c > 0
	}
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// edgeSorter sorts a held edge slice with edgeLess via sort.Sort. It is
// embedded in Solver (and addressed through the Solver pointer) so the
// sort.Interface conversion does not allocate.
type edgeSorter struct {
	es []Edge
}

func (s *edgeSorter) Len() int           { return len(s.es) }
func (s *edgeSorter) Less(i, j int) bool { return edgeLess(s.es[i], s.es[j]) }
func (s *edgeSorter) Swap(i, j int)      { s.es[i], s.es[j] = s.es[j], s.es[i] }

// GreedyMaxWeight is the allocation-free form of the package-level
// GreedyMaxWeight (lower bound l_w of §5.2.2).
func (s *Solver) GreedyMaxWeight(edges []Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	s.es.es = append(s.es.es[:0], edges...)
	sort.Sort(&s.es)
	mx, my := 0, 0
	for _, e := range edges {
		if e.X >= mx {
			mx = e.X + 1
		}
		if e.Y >= my {
			my = e.Y + 1
		}
	}
	s.busyX = growBools(s.busyX, mx)
	s.busyY = growBools(s.busyY, my)
	for i := 0; i < mx; i++ {
		s.busyX[i] = false
	}
	for i := 0; i < my; i++ {
		s.busyY[i] = false
	}
	total := 0.0
	for _, e := range s.es.es {
		if s.busyX[e.X] || s.busyY[e.Y] {
			continue
		}
		s.busyX[e.X] = true
		s.busyY[e.Y] = true
		total += e.W
	}
	return total
}

// GreedyMinDegree is the allocation-free form of the package-level
// GreedyMinDegree (lower bound l_e of §5.2.2). The adjacency lists are
// stored in CSR form; within one left vertex the edges keep their input
// order, so the result is identical to the slice-of-slices original.
func (s *Solver) GreedyMinDegree(nx, ny int, edges []Edge) float64 {
	if len(edges) == 0 {
		return 0
	}
	s.adjOff = growInt32s(s.adjOff, nx+1)
	for i := 0; i <= nx; i++ {
		s.adjOff[i] = 0
	}
	s.degY = growInt32s(s.degY, ny)
	for i := 0; i < ny; i++ {
		s.degY[i] = 0
	}
	for _, e := range edges {
		s.adjOff[e.X+1]++
		s.degY[e.Y]++
	}
	for i := 1; i <= nx; i++ {
		s.adjOff[i] += s.adjOff[i-1]
	}
	s.adjEdges = growEdges(s.adjEdges, len(edges))
	s.degX = growInt32s(s.degX, nx)
	for i := 0; i < nx; i++ {
		s.degX[i] = 0
	}
	for _, e := range edges {
		s.adjEdges[s.adjOff[e.X]+s.degX[e.X]] = e
		s.degX[e.X]++
	}
	s.goneX = growBools(s.goneX, nx)
	s.goneY = growBools(s.goneY, ny)
	for i := 0; i < nx; i++ {
		s.goneX[i] = false
	}
	for i := 0; i < ny; i++ {
		s.goneY[i] = false
	}
	adj := func(x int) []Edge { return s.adjEdges[s.adjOff[x]:s.adjOff[x+1]] }
	total := 0.0
	for {
		// Pick live left vertex with the smallest positive degree.
		bestX, bestD := -1, int32(1<<30)
		for x := 0; x < nx; x++ {
			if s.goneX[x] || s.degX[x] <= 0 {
				continue
			}
			if s.degX[x] < bestD {
				bestD = s.degX[x]
				bestX = x
			}
		}
		if bestX < 0 {
			break
		}
		// Among its live neighbours pick the one with the smallest degree;
		// break ties on weight (heavier first) then index for determinism.
		ax := adj(bestX)
		pick := -1
		pickD := int32(1 << 30)
		for i := range ax {
			e := &ax[i]
			if s.goneY[e.Y] {
				continue
			}
			if s.degY[e.Y] < pickD || (s.degY[e.Y] == pickD && pick >= 0 && (e.W > ax[pick].W || (mathx.Cmp(e.W, ax[pick].W) == 0 && e.Y < ax[pick].Y))) {
				pickD = s.degY[e.Y]
				pick = i
			}
		}
		if pick < 0 {
			s.goneX[bestX] = true
			s.degX[bestX] = 0
			continue
		}
		pe := ax[pick]
		total += pe.W
		s.goneX[bestX] = true
		s.goneY[pe.Y] = true
		// Update degrees of the survivors touching the removed vertices.
		for x := 0; x < nx; x++ {
			if s.goneX[x] {
				continue
			}
			var d int32
			for _, e := range adj(x) {
				if !s.goneY[e.Y] {
					d++
				}
			}
			s.degX[x] = d
		}
		for y := 0; y < ny; y++ {
			if s.goneY[y] {
				continue
			}
			var d int32
			for x := 0; x < nx; x++ {
				if s.goneX[x] {
					continue
				}
				for _, e := range adj(x) {
					if e.Y == y {
						d++
					}
				}
			}
			s.degY[y] = d
		}
	}
	return total
}

func growEdges(buf []Edge, n int) []Edge {
	if cap(buf) < n {
		return make([]Edge, n)
	}
	return buf[:n]
}

// LowerBound is the allocation-free form of the package-level
// LowerBound: max(GreedyMaxWeight, GreedyMinDegree).
func (s *Solver) LowerBound(nx, ny int, edges []Edge) float64 {
	lw := s.GreedyMaxWeight(edges)
	le := s.GreedyMinDegree(nx, ny, edges)
	if le > lw {
		return le
	}
	return lw
}

// UpperBound is the allocation-free form of the package-level
// UpperBound (Equation 6).
func (s *Solver) UpperBound(nx, ny int, edges []Edge) float64 {
	s.maxX = growFloats(s.maxX, nx)
	s.maxY = growFloats(s.maxY, ny)
	for i := 0; i < nx; i++ {
		s.maxX[i] = 0
	}
	for i := 0; i < ny; i++ {
		s.maxY[i] = 0
	}
	for _, e := range edges {
		if e.W > s.maxX[e.X] {
			s.maxX[e.X] = e.W
		}
		if e.W > s.maxY[e.Y] {
			s.maxY[e.Y] = e.W
		}
	}
	sx, sy := 0.0, 0.0
	for i := 0; i < nx; i++ {
		sx += s.maxX[i]
	}
	for i := 0; i < ny; i++ {
		sy += s.maxY[i]
	}
	if sx < sy {
		return sx
	}
	return sy
}
