// Package eval computes the quality measures of the paper's
// effectiveness experiments (§7.2): precision, recall and F-measure of a
// result pair set against a ground-truth pair set.
package eval

// Quality holds precision, recall and F-measure in percent/points as the
// paper reports them (precision/recall in %, F-measure in [0, 1] for the
// figures and in % for Table 4 — accessors provide both).
type Quality struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Measure compares a result pair set (X < Y index pairs) with the ground
// truth.
func Measure(results [][2]int, truth map[[2]int]bool) Quality {
	var q Quality
	seen := make(map[[2]int]bool, len(results))
	for _, p := range results {
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			q.TruePositives++
		} else {
			q.FalsePositives++
		}
	}
	for p := range truth {
		if !seen[p] {
			q.FalseNegatives++
		}
	}
	return q
}

// Precision returns TP/(TP+FP) in [0, 1]; 1 when nothing was returned.
func (q Quality) Precision() float64 {
	den := q.TruePositives + q.FalsePositives
	if den == 0 {
		return 1
	}
	return float64(q.TruePositives) / float64(den)
}

// Recall returns TP/(TP+FN) in [0, 1]; 1 when the truth is empty.
func (q Quality) Recall() float64 {
	den := q.TruePositives + q.FalseNegatives
	if den == 0 {
		return 1
	}
	return float64(q.TruePositives) / float64(den)
}

// F1 returns the harmonic mean of precision and recall in [0, 1].
func (q Quality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
