package eval

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeasureBasic(t *testing.T) {
	truth := map[[2]int]bool{{0, 1}: true, {2, 3}: true, {4, 5}: true}
	results := [][2]int{{0, 1}, {2, 3}, {6, 7}}
	q := Measure(results, truth)
	if q.TruePositives != 2 || q.FalsePositives != 1 || q.FalseNegatives != 1 {
		t.Fatalf("q = %+v", q)
	}
	if !almostEq(q.Precision(), 2.0/3) {
		t.Errorf("precision = %v", q.Precision())
	}
	if !almostEq(q.Recall(), 2.0/3) {
		t.Errorf("recall = %v", q.Recall())
	}
	if !almostEq(q.F1(), 2.0/3) {
		t.Errorf("f1 = %v", q.F1())
	}
}

func TestMeasureNormalizesAndDedupes(t *testing.T) {
	truth := map[[2]int]bool{{0, 1}: true}
	// Reversed and duplicated results count once.
	q := Measure([][2]int{{1, 0}, {0, 1}}, truth)
	if q.TruePositives != 1 || q.FalsePositives != 0 {
		t.Fatalf("q = %+v", q)
	}
}

func TestMeasureEdgeCases(t *testing.T) {
	q := Measure(nil, nil)
	if q.Precision() != 1 || q.Recall() != 1 {
		t.Errorf("empty/empty should be perfect: %+v", q)
	}
	q = Measure(nil, map[[2]int]bool{{0, 1}: true})
	if q.Recall() != 0 || q.Precision() != 1 || q.F1() != 0 {
		t.Errorf("nothing returned: %+v p=%v r=%v f=%v", q, q.Precision(), q.Recall(), q.F1())
	}
	q = Measure([][2]int{{0, 1}}, nil)
	if q.Precision() != 0 || q.Recall() != 1 {
		t.Errorf("all false positives: %+v", q)
	}
}
