package baseline

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"kjoin/internal/setmetric"
	"kjoin/internal/strutil"
	"kjoin/internal/synonym"
)

func TestEditBudget(t *testing.T) {
	// EDS ≥ 0.8 on a token of length 8 allows ED ≤ 2: (1−0.8)/0.8·8 = 2.
	if got := editBudget(8, 0.8); got != 2 {
		t.Errorf("editBudget(8, 0.8) = %d, want 2", got)
	}
	if got := editBudget(10, 0.5); got != 10 {
		t.Errorf("editBudget(10, 0.5) = %d, want 10", got)
	}
	if got := editBudget(5, 0); got != 5 {
		t.Errorf("editBudget(5, 0) = %d, want 5", got)
	}
}

func TestMakeSpec(t *testing.T) {
	sp := makeSpec(10, 2) // 3 segments: 4, 3, 3
	if !reflect.DeepEqual(sp.lengths, []int{4, 3, 3}) {
		t.Errorf("lengths = %v", sp.lengths)
	}
	if !reflect.DeepEqual(sp.starts, []int{0, 4, 7}) {
		t.Errorf("starts = %v", sp.starts)
	}
}

// Completeness property of the token signature scheme: tokens with edit
// similarity ≥ δ share a signature.
func TestTokenSigsComplete(t *testing.T) {
	gen := func(r *rand.Rand) string {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + r.Intn(5)))
		}
		return sb.String()
	}
	for _, delta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := gen(r), gen(r)
			if strutil.EditSim(a, b) < delta {
				return true
			}
			sa := tokenSigs(a, delta)
			sb := tokenSigs(b, delta)
			set := map[string]bool{}
			for _, s := range sa {
				set[s] = true
			}
			for _, s := range sb {
				if set[s] {
					return true
				}
			}
			t.Logf("δ=%v: %q ~ %q (sim %v) share no signature\n a: %v\n b: %v",
				delta, a, b, strutil.EditSim(a, b), sa, sb)
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
			t.Errorf("δ=%v: %v", delta, err)
		}
	}
}

// bruteFastJoin is the oracle: all-pairs fuzzy-Jaccard.
func bruteFastJoin(objects [][]string, delta, tau float64) [][2]int {
	tokID := map[string]int32{}
	var toks []string
	objs := make([][]int32, len(objects))
	for i, obj := range objects {
		seen := map[int32]bool{}
		for _, raw := range obj {
			tk := lower(raw)
			id, ok := tokID[tk]
			if !ok {
				id = int32(len(toks))
				tokID[tk] = id
				toks = append(toks, tk)
			}
			if !seen[id] {
				seen[id] = true
				objs[i] = append(objs[i], id)
			}
		}
	}
	var out [][2]int
	for x := 1; x < len(objs); x++ {
		for y := 0; y < x; y++ {
			if fuzzyJaccard(objs[x], objs[y], toks, delta) >= tau-1e-9 {
				out = append(out, [2]int{y, x})
			}
		}
	}
	return out
}

func TestFastJoinMatchesBruteForce(t *testing.T) {
	objects := [][]string{
		{"pizzahut", "brooklyn", "newyork"},
		{"pizzahat", "brooklyn", "newyork"}, // typo'd duplicate
		{"burgerking", "mountainview"},
		{"burgerking", "mountanview"}, // typo'd duplicate
		{"kfc", "manhattan"},
		{"dominos", "paloalto", "california"},
		{"dominoes", "paloalto", "california"},
		{"sushi", "tokyo"},
	}
	for _, delta := range []float64{0.5, 0.6, 0.8} {
		for _, tau := range []float64{0.5, 0.7, 0.9} {
			got, st, err := FastJoin(objects, FastJoinOptions{Delta: delta, Tau: tau})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteFastJoin(objects, delta, tau)
			gk := make([][2]int, len(got))
			for i, p := range got {
				gk[i] = [2]int{p.X, p.Y}
			}
			if !reflect.DeepEqual(gk, want) && !(len(gk) == 0 && len(want) == 0) {
				t.Errorf("δ=%v τ=%v: got %v, want %v", delta, tau, gk, want)
			}
			if st.Candidates == 0 && len(want) > 0 {
				t.Errorf("δ=%v τ=%v: no candidates but %d true pairs", delta, tau, len(want))
			}
		}
	}
}

func TestFastJoinFindsTypoPair(t *testing.T) {
	objects := [][]string{
		{"pizzahut", "fillmore", "st"},
		{"pizzahat", "fillmore", "st"},
	}
	pairs, _, err := FastJoin(objects, FastJoinOptions{Delta: 0.8, Tau: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want the typo pair", pairs)
	}
	// Overlap = 7/8 + 1 + 1 = 23/8; Jaccard = (23/8)/(6 − 23/8) = 23/25.
	if math.Abs(pairs[0].Sim-23.0/25) > 1e-9 {
		t.Errorf("sim = %v, want 23/25", pairs[0].Sim)
	}
}

func TestSynonymJoin(t *testing.T) {
	d := synonym.New()
	d.Add("californian", "american")
	d.Add("st", "street")
	objects := [][]string{
		{"californian", "food", "fillmore", "st"},
		{"american", "food", "fillmore", "street"},
		{"japanese", "food", "ellis", "dr"},
		{"american", "food", "ellis", "drive"},
	}
	pairs, st, err := SynonymJoin(objects, SynonymJoinOptions{Tau: 0.9, Synonyms: d})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].X != 0 || pairs[0].Y != 1 {
		t.Fatalf("pairs = %v, want exactly ⟨0,1⟩", pairs)
	}
	if pairs[0].Sim != 1 {
		t.Errorf("sim = %v, want 1 (full synonym normalization)", pairs[0].Sim)
	}
	if st.Candidates < 1 {
		t.Errorf("candidates = %d", st.Candidates)
	}
	// Without the dictionary, no pair survives τ=0.9.
	pairs, _, err = SynonymJoin(objects, SynonymJoinOptions{Tau: 0.9, Synonyms: synonym.New()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("without rules, pairs = %v, want none", pairs)
	}
}

// SynonymJoin against a brute-force oracle on random data.
func TestSynonymJoinMatchesBruteForce(t *testing.T) {
	d := synonym.New()
	d.Add("a", "alpha")
	d.Add("b", "beta")
	vocab := []string{"a", "alpha", "b", "beta", "c", "d", "e", "f", "g"}
	r := rand.New(rand.NewSource(7))
	var objects [][]string
	for i := 0; i < 40; i++ {
		n := 2 + r.Intn(4)
		var o []string
		for j := 0; j < n; j++ {
			o = append(o, vocab[r.Intn(len(vocab))])
		}
		objects = append(objects, o)
	}
	for _, tau := range []float64{0.5, 0.7, 0.9} {
		got, _, err := SynonymJoin(objects, SynonymJoinOptions{Tau: tau, Synonyms: d})
		if err != nil {
			t.Fatal(err)
		}
		// Oracle.
		canon := func(o []string) map[string]bool {
			m := map[string]bool{}
			for _, t := range o {
				m[d.Canonical(t)] = true
			}
			return m
		}
		var want [][2]int
		for x := 1; x < len(objects); x++ {
			for y := 0; y < x; y++ {
				cx, cy := canon(objects[x]), canon(objects[y])
				inter := 0
				for t := range cx {
					if cy[t] {
						inter++
					}
				}
				if setmetric.Jaccard.Sim(float64(inter), len(cx), len(cy)) >= tau-1e-9 {
					want = append(want, [2]int{y, x})
				}
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i][0] != want[j][0] {
				return want[i][0] < want[j][0]
			}
			return want[i][1] < want[j][1]
		})
		gk := make([][2]int, len(got))
		for i, p := range got {
			gk[i] = [2]int{p.X, p.Y}
		}
		if !reflect.DeepEqual(gk, want) && !(len(gk) == 0 && len(want) == 0) {
			t.Errorf("τ=%v: got %v, want %v", tau, gk, want)
		}
	}
}

func TestCrowdPerfectOracle(t *testing.T) {
	objects := [][]string{
		{"pizzahut", "brooklyn"},
		{"pizzahut", "brooklyn", "ny"},
		{"kfc", "manhattan"},
		{"dominos", "paloalto"},
	}
	truth := map[[2]int]bool{{0, 1}: true}
	pairs, st, err := Crowd(objects, CrowdOptions{Truth: truth, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].X != 0 || pairs[0].Y != 1 {
		t.Fatalf("pairs = %v, want exactly the truth", pairs)
	}
	if st.Candidates == 0 {
		t.Error("blocking should produce candidates")
	}
}

func TestCrowdErrorRates(t *testing.T) {
	// Build many blocked pairs and check error rates are roughly honored.
	var objects [][]string
	truth := map[[2]int]bool{}
	for i := 0; i < 200; i++ {
		objects = append(objects, []string{"shared", "tok" + string(rune('a'+i%26))})
	}
	for i := 0; i+1 < 200; i += 2 {
		truth[[2]int{i, i + 1}] = true
	}
	opt := CrowdOptions{Truth: truth, MissRate: 0.5, FalseRate: 0.1, Seed: 42}
	pairs, st, err := Crowd(objects, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 199*100 { // all pairs share "shared"
		t.Fatalf("candidates = %d, want %d", st.Candidates, 199*100)
	}
	var tp, fp int
	for _, p := range pairs {
		if truth[[2]int{p.X, p.Y}] {
			tp++
		} else {
			fp++
		}
	}
	if tp < 25 || tp > 75 { // 100 true pairs at 50% miss
		t.Errorf("true positives = %d, want ≈50", tp)
	}
	wantFP := float64(199*100-100) * 0.1
	if float64(fp) < wantFP*0.7 || float64(fp) > wantFP*1.3 {
		t.Errorf("false positives = %d, want ≈%.0f", fp, wantFP)
	}
	// Determinism.
	pairs2, _, _ := Crowd(objects, opt)
	if !reflect.DeepEqual(pairs, pairs2) {
		t.Error("crowd oracle must be deterministic for a fixed seed")
	}
}

func TestLower(t *testing.T) {
	if lower("KFC") != "kfc" || lower("kfc") != "kfc" || lower("PizzaHut42") != "pizzahut42" {
		t.Error("lower mismatch")
	}
}
