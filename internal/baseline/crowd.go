package baseline

import (
	"sort"
	"time"

	"kjoin/internal/index"
	"kjoin/internal/rng"
)

// CrowdOptions configures the simulated crowdsourcing baseline (CrowdER,
// Wang et al., VLDB 2012). The paper used human workers; this
// reproduction substitutes a seeded noisy oracle with the error profile
// the paper observed for Crowd in Table 4 (high recall, lower precision):
// a candidate pair is answered "match" with probability 1 − MissRate if
// it is a true match and FalseRate if it is not.
type CrowdOptions struct {
	// Truth is the ground-truth matching pair set (X < Y object indices).
	Truth map[[2]int]bool
	// MissRate is the probability the crowd misses a true match.
	MissRate float64
	// FalseRate is the probability the crowd accepts a false candidate.
	FalseRate float64
	// Seed drives the per-pair error coins.
	Seed uint64
}

// DefaultCrowdOptions returns the error profile used in the reproduction
// of Table 4: 5% missed matches, 0.8% accepted non-matches.
func DefaultCrowdOptions(truth map[[2]int]bool, seed uint64) CrowdOptions {
	return CrowdOptions{Truth: truth, MissRate: 0.05, FalseRate: 0.008, Seed: seed}
}

// Crowd runs the simulated crowdsourcing entity-resolution baseline:
// cheap machine blocking (candidate pairs share at least one token)
// followed by a crowd judgment per candidate. Sim is 1 for accepted
// pairs (the crowd gives yes/no answers).
func Crowd(objects [][]string, opt CrowdOptions) ([]Pair, *Stats, error) {
	st := &Stats{Objects: len(objects)}
	t0 := time.Now()

	// Blocking: share-a-token, via an inverted index over all tokens.
	tokID := map[string]int32{}
	objs := make([][]int32, len(objects))
	for i, obj := range objects {
		seen := map[int32]bool{}
		for _, raw := range obj {
			t := lower(raw)
			id, ok := tokID[t]
			if !ok {
				id = int32(len(tokID))
				tokID[t] = id
			}
			if !seen[id] {
				seen[id] = true
				objs[i] = append(objs[i], id)
			}
		}
	}
	ix := index.New()
	for i, o := range objs {
		ix.AddAll(o, int32(i))
	}

	var out []Pair
	seen := make([]int32, len(objs))
	for i := range seen {
		seen[i] = -1
	}
	for x := 0; x < len(objs); x++ {
		for _, t := range objs[x] {
			for _, y := range ix.Postings(t) {
				if int(y) >= x {
					break
				}
				if seen[y] == int32(x) {
					continue
				}
				seen[y] = int32(x)
				st.Candidates++
				truth := opt.Truth[[2]int{int(y), x}]
				coin := float64(rng.PairHash(opt.Seed, int(y), x)%1_000_000) / 1_000_000
				var answer bool
				if truth {
					answer = coin >= opt.MissRate
				} else {
					answer = coin < opt.FalseRate
				}
				if answer {
					out = append(out, Pair{X: int(y), Y: x, Sim: 1})
				}
			}
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].X != out[k].X {
			return out[i].X < out[k].X
		}
		return out[i].Y < out[k].Y
	})
	st.Elapsed = time.Since(t0)
	return out, st, nil
}
