// Package baseline implements the comparison systems of the paper's
// evaluation (§7): FastJoin (Wang et al., ICDE 2011 — fuzzy-token
// matching set similarity join), Synonym (Lu et al., SIGMOD 2013 —
// synonym-rule normalized set join), and Crowd (Wang et al., VLDB 2012 —
// crowdsourced entity resolution, simulated here by a seeded noisy
// oracle). All are built from scratch on the same substrates as K-Join.
package baseline

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"kjoin/internal/index"
	"kjoin/internal/matching"
	"kjoin/internal/mathx"
	"kjoin/internal/setmetric"
	"kjoin/internal/strutil"
)

// Pair is one join result (X < Y index the object slice).
type Pair struct {
	X, Y int
	Sim  float64
}

// Stats reports the work a baseline join did.
type Stats struct {
	Objects    int
	Candidates int64
	Signatures int64 // total signature strings generated
	Elapsed    time.Duration
}

// FastJoinOptions configures the FastJoin baseline.
type FastJoinOptions struct {
	// Delta is the token edit-similarity threshold δ.
	Delta float64
	// Tau is the fuzzy-Jaccard object threshold τ.
	Tau float64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// segSpec describes the even partition of strings of length l under edit
// budget k: k+1 segments (Pass-Join / FastJoin segment signatures).
type segSpec struct {
	starts  []int
	lengths []int
}

func makeSpec(l, k int) segSpec {
	n := k + 1
	sp := segSpec{starts: make([]int, n), lengths: make([]int, n)}
	base, extra := l/n, l%n
	pos := 0
	for i := 0; i < n; i++ {
		ln := base
		if i < extra {
			ln++
		}
		sp.starts[i] = pos
		sp.lengths[i] = ln
		pos += ln
	}
	return sp
}

// editBudget returns the maximum edit distance k a token of length l can
// have to any token within edit similarity δ: from EDS ≥ δ follows
// ED ≤ (1−δ)/δ · l.
func editBudget(l int, delta float64) int {
	if delta <= 0 {
		return l
	}
	return int((1 - delta) / delta * float64(l) * (1 + 1e-12))
}

// tokenSigs returns the signature strings of token t under the
// symmetric segment scheme: t's own segments (tagged by index) plus, for
// every plausible partner length, the substrings of t aligned (within the
// edit budget) with that partner's segments. Two tokens with edit
// similarity ≥ δ always share a signature: an unedited segment of one is
// a substring of the other at a position shifted by at most the budget,
// and the union makes the witness symmetric.
func tokenSigs(t string, delta float64) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	if delta <= 0.5 {
		// With δ ≤ 0.5 the edit budget reaches the token length: two
		// tokens may be similar while sharing no character (pigeonhole
		// gives no witness). Every token carries a universal signature —
		// the scheme degenerates, which is exactly the candidate blow-up
		// the paper observes for FastJoin at small δ.
		add("#any")
	}
	lt := len(t)
	k := editBudget(lt, delta)
	spec := makeSpec(lt, k)
	for i := range spec.starts {
		if spec.lengths[i] == 0 {
			continue
		}
		add(segKey(i, t[spec.starts[i]:spec.starts[i]+spec.lengths[i]]))
	}
	// Partner lengths l with |l − lt| within both budgets.
	lmin := mathx.CeilInt(delta * float64(lt))
	if lmin < 1 {
		lmin = 1
	}
	lmax := int(float64(lt)/delta + 1e-12)
	for l := lmin; l <= lmax; l++ {
		if l == lt {
			continue
		}
		kp := editBudget(l, delta)
		psp := makeSpec(l, kp)
		for j := range psp.starts {
			ln := psp.lengths[j]
			if ln == 0 || ln > lt {
				continue
			}
			lo := psp.starts[j] - kp
			hi := psp.starts[j] + kp
			if lo < 0 {
				lo = 0
			}
			if hi > lt-ln {
				hi = lt - ln
			}
			for p := lo; p <= hi; p++ {
				add(segKey(j, t[p:p+ln]))
			}
		}
	}
	return out
}

// segKey tags a segment string with its index so that segment j of one
// token only matches (sub)strings aligned with segment j of another.
func segKey(j int, s string) string {
	return string(rune('0'+j%10)) + ":" + s
}

// FastJoin runs the FastJoin baseline self-join over tokenized objects:
// fuzzy-Jaccard with edit-similarity token matching, segment-signature
// prefix filtering, and Hungarian verification.
func FastJoin(objects [][]string, opt FastJoinOptions) ([]Pair, *Stats, error) {
	st := &Stats{Objects: len(objects)}
	t0 := time.Now()

	// Intern tokens, dedup within objects.
	tokID := map[string]int32{}
	var toks []string
	objs := make([][]int32, len(objects))
	for i, obj := range objects {
		seen := map[int32]bool{}
		for _, raw := range obj {
			t := lower(raw)
			id, ok := tokID[t]
			if !ok {
				id = int32(len(toks))
				tokID[t] = id
				toks = append(toks, t)
			}
			if !seen[id] {
				seen[id] = true
				objs[i] = append(objs[i], id)
			}
		}
	}

	// Document frequency order (ascending).
	df := make([]int32, len(toks))
	for _, o := range objs {
		for _, t := range o {
			df[t]++
		}
	}
	for i := range objs {
		o := objs[i]
		sort.Slice(o, func(a, b int) bool {
			if df[o[a]] != df[o[b]] {
				return df[o[a]] < df[o[b]]
			}
			return o[a] < o[b]
		})
	}

	// Per-token signatures (interned to int32 keys).
	sigID := map[string]int32{}
	tokSigs := make([][]int32, len(toks))
	for i, t := range toks {
		ss := tokenSigs(t, opt.Delta)
		st.Signatures += int64(len(ss))
		for _, s := range ss {
			id, ok := sigID[s]
			if !ok {
				id = int32(len(sigID))
				sigID[s] = id
			}
			tokSigs[i] = append(tokSigs[i], id)
		}
	}

	// Prefix tokens. With fuzzy token matching a matched pair can have
	// its x-token in x's suffix or its y-token in y's suffix, so a suffix
	// of τ_S − 1 tokens per object could hide up to 2(τ_S − 1) ≥ τ_S
	// matched pairs. Keeping only ⌊(τ_S − 1)/2⌋ tokens out of each
	// prefix restores the guarantee: pairs avoiding prefix×prefix ≤
	// suffix_x + suffix_y ≤ τ_Sx/2 − ε + τ_Sy/2 − ε < max(τ_Sx, τ_Sy).
	prefixes := make([][]int32, len(objs)) // signature ids, deduped
	for i, o := range objs {
		tauS := setmetric.Jaccard.TauS(opt.Tau, len(o))
		p := len(o) - (tauS-1)/2
		if p < 0 {
			p = 0
		}
		if p > len(o) {
			p = len(o)
		}
		seen := map[int32]bool{}
		for _, t := range o[:p] {
			for _, s := range tokSigs[t] {
				if !seen[s] {
					seen[s] = true
					prefixes[i] = append(prefixes[i], s)
				}
			}
		}
	}

	ix := index.New()
	for i := range prefixes {
		ix.AddAll(prefixes[i], int32(i))
	}

	pairs := probeAndVerify(len(objs), prefixes, ix, opt.Workers, st, func(x, y int) (float64, bool) {
		// Length filter: even a perfect matching of the smaller object
		// cannot reach the required overlap.
		min := len(objs[x])
		if len(objs[y]) < min {
			min = len(objs[y])
		}
		if mathx.LT(float64(min), setmetric.Jaccard.PairOverlap(opt.Tau, len(objs[x]), len(objs[y]))) {
			return 0, false
		}
		s := fuzzyJaccard(objs[x], objs[y], toks, opt.Delta)
		return s, mathx.GE(s, opt.Tau)
	})
	st.Elapsed = time.Since(t0)
	return pairs, st, nil
}

// fuzzyJaccard computes FastJoin's fuzzy-Jaccard between two token-id
// sets: maximum-weight matching over edit-similarity edges ≥ δ.
func fuzzyJaccard(x, y []int32, toks []string, delta float64) float64 {
	var es []matching.Edge
	for i, a := range x {
		for j, b := range y {
			if a == b {
				es = append(es, matching.Edge{X: i, Y: j, W: 1})
				continue
			}
			if s, ok := strutil.EditSimAtLeast(toks[a], toks[b], delta); ok {
				es = append(es, matching.Edge{X: i, Y: j, W: s})
			}
		}
	}
	if len(es) == 0 {
		return 0
	}
	o, _ := matching.MaxWeight(len(x), len(y), es)
	return setmetric.Jaccard.Sim(o, len(x), len(y))
}

// probeAndVerify runs the shared candidate-generation loop: for each
// object x, every smaller-id object sharing a prefix signature is a
// candidate and is verified with fn.
func probeAndVerify(n int, prefixes [][]int32, ix *index.Inverted, workers int, st *Stats,
	fn func(x, y int) (float64, bool)) []Pair {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		pairs      []Pair
		candidates int64
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			seen := make([]int32, n)
			for i := range seen {
				seen[i] = -1
			}
			for x := w; x < n; x += workers {
				for _, s := range prefixes[x] {
					for _, y := range ix.Postings(s) {
						if int(y) >= x {
							break
						}
						if seen[y] == int32(x) {
							continue
						}
						seen[y] = int32(x)
						res.candidates++
						if sim, ok := fn(x, int(y)); ok {
							res.pairs = append(res.pairs, Pair{X: int(y), Y: x, Sim: sim})
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var out []Pair
	for i := range results {
		out = append(out, results[i].pairs...)
		st.Candidates += results[i].candidates
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].X != out[k].X {
			return out[i].X < out[k].X
		}
		return out[i].Y < out[k].Y
	})
	return out
}

func lower(s string) string {
	// Tokens arrive already tokenized; normalize case cheaply.
	needs := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
