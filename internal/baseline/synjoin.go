package baseline

import (
	"sort"
	"time"

	"kjoin/internal/index"
	"kjoin/internal/mathx"
	"kjoin/internal/setmetric"
	"kjoin/internal/synonym"
)

// SynonymJoinOptions configures the Synonym baseline (Lu et al., SIGMOD
// 2013): tokens are normalized through synonym rules and matched exactly;
// the object similarity is Jaccard over the canonicalized token sets.
type SynonymJoinOptions struct {
	// Tau is the Jaccard threshold τ.
	Tau float64
	// Synonyms is the rule dictionary.
	Synonyms *synonym.Dict
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// SynonymJoin runs the Synonym baseline self-join. Because matching is
// exact after canonicalization, the classic prefix filter applies:
// the first |S| − τ_S + 1 canonical tokens in ascending df order form
// the prefix.
func SynonymJoin(objects [][]string, opt SynonymJoinOptions) ([]Pair, *Stats, error) {
	st := &Stats{Objects: len(objects)}
	t0 := time.Now()

	canonID := map[string]int32{}
	objs := make([][]int32, len(objects))
	for i, obj := range objects {
		seen := map[int32]bool{}
		for _, raw := range obj {
			c := opt.Synonyms.Canonical(raw)
			id, ok := canonID[c]
			if !ok {
				id = int32(len(canonID))
				canonID[c] = id
			}
			if !seen[id] {
				seen[id] = true
				objs[i] = append(objs[i], id)
			}
		}
	}

	df := make([]int32, len(canonID))
	for _, o := range objs {
		for _, t := range o {
			df[t]++
		}
	}
	for i := range objs {
		o := objs[i]
		sort.Slice(o, func(a, b int) bool {
			if df[o[a]] != df[o[b]] {
				return df[o[a]] < df[o[b]]
			}
			return o[a] < o[b]
		})
	}

	prefixes := make([][]int32, len(objs))
	for i, o := range objs {
		tauS := setmetric.Jaccard.TauS(opt.Tau, len(o))
		p := len(o) - tauS + 1
		if p < 0 {
			p = 0
		}
		if p > len(o) {
			p = len(o)
		}
		prefixes[i] = o[:p]
		st.Signatures += int64(p)
	}

	ix := index.New()
	for i := range prefixes {
		ix.AddAll(prefixes[i], int32(i))
	}

	pairs := probeAndVerify(len(objs), prefixes, ix, opt.Workers, st, func(x, y int) (float64, bool) {
		s := exactJaccard(objs[x], objs[y])
		return s, mathx.GE(s, opt.Tau)
	})
	st.Elapsed = time.Since(t0)
	return pairs, st, nil
}

// exactJaccard computes Jaccard over two id sets (ids deduplicated per
// object).
func exactJaccard(x, y []int32) float64 {
	set := make(map[int32]bool, len(x))
	for _, t := range x {
		set[t] = true
	}
	inter := 0
	for _, t := range y {
		if set[t] {
			inter++
		}
	}
	return setmetric.Jaccard.Sim(float64(inter), len(x), len(y))
}
