package dataset

import (
	"fmt"

	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
	"kjoin/internal/strutil"
	"kjoin/internal/synonym"
)

// Labeled is a corpus with duplicate ground truth plus the side inputs
// the different systems consume: the hierarchy for K-Join, the generic
// rule dictionary for the Synonym baseline, and the richer KB alias
// dictionary for K-Join+. The distinction mirrors the paper's setting:
// K-Join+ matches elements to knowledge-base nodes through the KB's own
// aliases (Freebase/Yago nodes carry alias lists), while the Synonym
// system of Lu et al. only has generic rule pairs.
type Labeled struct {
	Records [][]string
	Truth   map[[2]int]bool
	H       *hierarchy.Hierarchy
	// Synonyms are the generic rules available to the Synonym baseline.
	Synonyms *synonym.Dict
	// Aliases is the KB alias dictionary used by K-Join+ (a superset of
	// generic rules plus per-node abbreviation aliases).
	Aliases *synonym.Dict
}

// PubConfig controls GenPub.
type PubConfig struct {
	Seed uint64
	N    int // total records, paper: 1879
	// DupFrac is the fraction of records that are erroneous duplicates.
	DupFrac float64
	// Areas and VenuesPerArea shape the 3-level hierarchy of §7.2
	// ("paper, research area, conference").
	Areas, VenuesPerArea int
	// Keywords is the number of depth-3 keyword nodes per venue.
	Keywords int
}

// DefaultPub returns the Pub corpus configuration of Table 3: 1879
// records, average length ≈ 6, lengths in [4, 16], element depth ≈ 3.
func DefaultPub() PubConfig {
	return PubConfig{Seed: 17, N: 1879, DupFrac: 0.35, Areas: 14, VenuesPerArea: 10, Keywords: 12}
}

// GenPub generates the Pub corpus: papers with author, title-keyword and
// venue tokens over a 3-level hierarchy (area → venue → keyword). The
// inconsistencies in duplicates are typos and abbreviations, the error
// classes the paper attributes to Pub.
func GenPub(cfg PubConfig) *Labeled {
	r := rng.New(cfg.Seed)
	nm := newNamer(rng.New(cfg.Seed ^ 0xabcd))
	h := hierarchy.New("Publications")
	var venues, keywords []hierarchy.NodeID
	for a := 0; a < cfg.Areas; a++ {
		area := h.Add(h.Root(), "area_"+nm.next())
		for v := 0; v < cfg.VenuesPerArea; v++ {
			venue := h.Add(area, nm.next()+"conf")
			venues = append(venues, venue)
			for k := 0; k < cfg.Keywords; k++ {
				keywords = append(keywords, h.Add(venue, nm.next()+"ics"))
			}
		}
	}
	// Author vocabulary (free tokens).
	authors := make([]string, 400)
	for i := range authors {
		authors[i] = nm.next() + "son"
	}

	// Every venue has an alternate full name ("KDD" vs "Knowledge
	// Discovery and Data Mining"), known to the KB alias dictionary
	// (real KB nodes carry alias lists) along with most abbreviations.
	// The generic rule set available to the Synonym baseline covers only
	// a few well-known venue aliases. Typos are never rules.
	aliases := synonym.New()
	generic := synonym.New()
	altName := map[string]string{}
	for _, v := range venues {
		name := h.Name(v)
		alt := nm.next() + "proc"
		altName[name] = alt
		if rngCoin(r, 0.8) {
			aliases.Add(name, alt)
		}
		if rngCoin(r, 0.05) {
			generic.Add(name, alt)
		}
		if len(name) > 6 && rngCoin(r, 0.75) {
			aliases.Add(name, strutil.Abbreviate(name))
		}
	}
	for _, k := range keywords {
		name := h.Name(k)
		if len(name) > 6 && rngCoin(r, 0.75) {
			aliases.Add(name, strutil.Abbreviate(name))
		}
		// Keywords have alternate phrasings too ("ML" vs "machine
		// learning"); most are KB aliases, none are generic rules.
		alt := nm.next() + "ics"
		altName[name] = alt
		if rngCoin(r, 0.8) {
			aliases.Add(name, alt)
		}
	}

	out := &Labeled{Truth: map[[2]int]bool{}, H: h, Synonyms: generic, Aliases: aliases}
	nBase := cfg.N - int(float64(cfg.N)*cfg.DupFrac)
	clusterMembers := map[int][]int{}
	baseIDs := make([]int, 0, nBase)
	for i := 0; i < cfg.N; i++ {
		if i >= nBase {
			// Duplicate of a random base with typo/abbreviation/alias
			// errors.
			base := baseIDs[r.Intn(len(baseIDs))]
			rec := pubMutate(r, h, out.Records[base], altName)
			out.Records = append(out.Records, rec)
			for _, j := range clusterMembers[base] {
				out.Truth[[2]int{j, i}] = true
			}
			clusterMembers[base] = append(clusterMembers[base], i)
			continue
		}
		venue := venues[r.Intn(len(venues))]
		nkw := 2 + r.Intn(3)
		if r.Intn(15) == 0 {
			nkw += 4 + r.Intn(9) // occasional long titles (Table 3: max 16)
		}
		rec := make([]string, 0, nkw+3)
		rec = append(rec, authors[r.Intn(len(authors))])
		if rngCoin(r, 0.6) {
			rec = append(rec, authors[r.Intn(len(authors))])
		}
		seen := map[string]bool{}
		for len(rec) < nkw+2 {
			kw := h.Name(keywords[r.Intn(len(keywords))])
			if !seen[kw] {
				seen[kw] = true
				rec = append(rec, kw)
			}
		}
		rec = append(rec, h.Name(venue))
		out.Records = append(out.Records, rec)
		baseIDs = append(baseIDs, i)
		clusterMembers[i] = []int{i}
	}
	return out
}

// pubMutate injects Pub-style errors on 1–3 tokens: character typos
// (sometimes two edits in one token), abbreviations ("Artificial" →
// "Artif"), venue alias swaps ("KDD" ↔ its full proceedings name),
// sibling-keyword swaps (keyword extraction variance under the same
// venue), and the occasional dropped token.
func pubMutate(r *rng.RNG, h *hierarchy.Hierarchy, rec []string, altName map[string]string) []string {
	out := append([]string(nil), rec...)
	edits := 1 + r.Intn(4)
	for e := 0; e < edits && len(out) > 4; e++ {
		i := r.Intn(len(out))
		c := r.Float64()
		switch {
		case c < 0.27: // typo, 25% of them double
			out[i] = typo(r, out[i])
			if rngCoin(r, 0.25) {
				out[i] = typo(r, out[i])
			}
		case c < 0.40: // abbreviation
			out[i] = strutil.Abbreviate(out[i])
		case c < 0.70: // alias swap on a random alias-bearing token
			var cand []int
			for j, t := range out {
				if _, ok := altName[t]; ok {
					cand = append(cand, j)
				}
			}
			if len(cand) > 0 {
				j := cand[r.Intn(len(cand))]
				out[j] = altName[out[j]]
			}
		case c < 0.85: // sibling keyword under the same venue
			if ns := h.Lookup(out[i]); len(ns) > 0 && h.Depth(ns[0]) == 3 {
				out[i] = hierSwap(r, h, ns[0])
			} else {
				out[i] = typo(r, out[i])
			}
		default: // dropped token (unrecoverable for every system)
			out = append(out[:i], out[i+1:]...)
		}
	}
	return out
}

// ResConfig controls GenRes.
type ResConfig struct {
	Seed uint64
	N    int // total records, paper: 864
	// DupFrac is the fraction of records that are erroneous duplicates.
	DupFrac float64
}

// DefaultRes returns the Res corpus configuration of Table 3: 864
// records of exactly 4 tokens (name, street, city, food category) with
// element depth ≈ 5.
func DefaultRes() ResConfig {
	return ResConfig{Seed: 19, N: 864, DupFrac: 0.4}
}

// GenRes generates the Res corpus over the main (Table 2 shaped)
// hierarchy hr: each restaurant is {name, street, city, food}. The
// inconsistencies in duplicates are synonyms and knowledge-hierarchy
// substitutions ("Californian food" vs "American food"), the error
// classes the paper attributes to Res.
func GenRes(hr *Hier, cfg ResConfig) *Labeled {
	r := rng.New(cfg.Seed)
	nm := newNamer(rng.New(cfg.Seed ^ 0xbeef))

	// Street-word synonym rules, shared with the Synonym baseline.
	d := synonym.New()
	streetKinds := [][]string{
		{"st", "street"},
		{"ave", "avenue"},
		{"dr", "drive"},
		{"blvd", "boulevard"},
		{"rd", "road"},
	}
	for _, g := range streetKinds {
		d.Add(g...)
	}

	names := make([]string, 300)
	for i := range names {
		names[i] = nm.next() + "s"
	}
	streets := make([]string, 120)
	for i := range streets {
		streets[i] = nm.next()
	}

	// Food categories: deep Food-domain nodes; cities: deep Location
	// nodes (average element depth ≈ 5 per Table 3).
	foodPool := append(append([]hierarchy.NodeID{}, hr.NodesAt(0, 5)...), hr.NodesAt(0, 6)...)
	cityPool := append(append([]hierarchy.NodeID{}, hr.NodesAt(1, 5)...), hr.NodesAt(1, 4)...)

	out := &Labeled{Truth: map[[2]int]bool{}, H: hr.H, Synonyms: d, Aliases: d}
	nBase := cfg.N - int(float64(cfg.N)*cfg.DupFrac)
	clusterMembers := map[int][]int{}
	baseIDs := make([]int, 0, nBase)
	for i := 0; i < cfg.N; i++ {
		if i >= nBase {
			base := baseIDs[r.Intn(len(baseIDs))]
			rec := resMutate(r, hr.H, d, out.Records[base])
			out.Records = append(out.Records, rec)
			for _, j := range clusterMembers[base] {
				out.Truth[[2]int{j, i}] = true
			}
			clusterMembers[base] = append(clusterMembers[base], i)
			continue
		}
		kind := streetKinds[r.Intn(len(streetKinds))]
		rec := []string{
			names[r.Intn(len(names))],
			streets[r.Intn(len(streets))],
			kind[r.Intn(len(kind))], // "st" / "street" / "ave" / ...
			hr.H.Name(cityPool[r.Intn(len(cityPool))]),
			hr.H.Name(foodPool[r.Intn(len(foodPool))]),
		}
		out.Records = append(out.Records, rec)
		baseIDs = append(baseIDs, i)
		clusterMembers[i] = []int{i}
	}
	return out
}

// resMutate injects Res-style errors: hierarchy substitutions on the
// food/city entities and synonym swaps on the street-kind token, plus
// the occasional typo. Record layout: {name, street, kind, city, food}.
func resMutate(r *rng.RNG, h *hierarchy.Hierarchy, d *synonym.Dict, rec []string) []string {
	out := append([]string(nil), rec...)
	edits := 1 + r.Intn(3)
	for e := 0; e < edits; e++ {
		switch r.Intn(10) {
		case 0, 1, 2: // hierarchy substitution on food
			if ns := h.Lookup(out[4]); len(ns) > 0 {
				out[4] = hierSwap(r, h, ns[0])
			}
		case 3, 4: // hierarchy substitution on city
			if ns := h.Lookup(out[3]); len(ns) > 0 {
				out[3] = hierSwap(r, h, ns[0])
			}
		case 5, 6, 7: // street-kind synonym swap ("st" → "street")
			syns := d.Expand(out[2])
			if len(syns) > 1 {
				for tries := 0; tries < 4; tries++ {
					s := syns[r.Intn(len(syns))]
					if s != out[2] {
						out[2] = s
						break
					}
				}
			}
		default: // typo on the name
			out[0] = typo(r, out[0])
		}
	}
	return out
}

// rngCoin returns true with probability p.
func rngCoin(r *rng.RNG, p float64) bool { return r.Float64() < p }

// Describe returns a short human-readable summary of a labeled corpus.
func (l *Labeled) Describe() string {
	return fmt.Sprintf("%d records, %d truth pairs, hierarchy %d nodes, %d synonym groups",
		len(l.Records), len(l.Truth), l.H.Len(), l.Synonyms.Len())
}
