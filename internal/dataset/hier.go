// Package dataset generates the evaluation workloads of the paper (§7.1):
// a knowledge hierarchy with the shape of Table 2, the POI and Tweet
// collections of Table 3, and the Pub and Res corpora with ground truth
// used for the effectiveness experiments (Table 4, Figures 7–8).
//
// The paper's artifacts (a Factual crawl, CrowdER's labeled Pub/Res data)
// are not redistributable; these seeded generators reproduce the
// properties the algorithms are sensitive to — tree shape, record length,
// element depth, token frequency skew, and the error classes
// (typos/abbreviations for Pub, synonyms/hierarchy substitutions for
// Res). See DESIGN.md §3 for the substitution rationale.
package dataset

import (
	"fmt"

	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
)

// HierarchyConfig controls GenHierarchy. The defaults (DefaultHierarchy)
// reproduce Table 2: 4222 nodes, height 6, average fanout 7, maximum
// fanout 49, minimum fanout 1.
type HierarchyConfig struct {
	Seed      uint64
	Nodes     int // total node budget
	Height    int // maximum depth
	MaxFanout int
}

// DefaultHierarchy returns the Table 2 configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{Seed: 1, Nodes: 4222, Height: 6, MaxFanout: 49}
}

// Hier is a generated knowledge hierarchy together with the per-depth
// node lists the dataset generators sample from.
type Hier struct {
	H *hierarchy.Hierarchy
	// ByDepth[d] lists the nodes at depth d (1 ≤ d ≤ Height), split by
	// domain: ByDepth[d][0] is Food, ByDepth[d][1] is Location.
	ByDepth [][2][]hierarchy.NodeID
}

// NodesAt returns the generated nodes of the given domain (0 = Food,
// 1 = Location) at depth d, or nil.
func (hr *Hier) NodesAt(domain, d int) []hierarchy.NodeID {
	if d < 0 || d >= len(hr.ByDepth) {
		return nil
	}
	return hr.ByDepth[d][domain]
}

// GenHierarchy builds a two-domain (Food, Location) knowledge hierarchy
// with the configured shape. Node names are synthesized, unique,
// lowercase tokens, so each name maps to exactly one node. The per-level
// sizes are fixed fractions of the budget chosen so that internal-node
// count ≈ nodes/7 (average fanout 7) and the deep levels carry most of
// the entities, as in a real category hierarchy.
func GenHierarchy(cfg HierarchyConfig) *Hier {
	if cfg.Nodes < 10 {
		cfg.Nodes = 10
	}
	if cfg.Height < 3 {
		cfg.Height = 3
	}
	if cfg.MaxFanout < 2 {
		cfg.MaxFanout = 2
	}
	r := rng.New(cfg.Seed)
	h := hierarchy.New("Root")
	food := h.Add(h.Root(), "Food")
	loc := h.Add(h.Root(), "Location")
	namer := newNamer(r)

	// Level sizes for depths 2..Height: mostly geometric growth with a
	// thinner final level. For the default (4222, height 6) this yields
	// [14, 90, 600, 2400, 1115].
	budget := cfg.Nodes - 3
	sizes := levelSizes(budget, cfg.Height-1)

	out := &Hier{H: h, ByDepth: make([][2][]hierarchy.NodeID, cfg.Height+1)}
	out.ByDepth[1][0] = append(out.ByDepth[1][0], food)
	out.ByDepth[1][1] = append(out.ByDepth[1][1], loc)

	// Each domain grows independently (half the level budget each), so
	// the hot-lineage skew cannot starve one domain of deep levels.
	for dom, domRoot := range []hierarchy.NodeID{food, loc} {
		prev := []hierarchy.NodeID{domRoot}
		for _, levelSize := range sizes {
			size := levelSize/2 + dom*(levelSize%2)
			if size <= 0 || len(prev) == 0 {
				break
			}
			// Designate ≈ size/7 parents, keeping the average fanout near
			// 7. Parents are the first np nodes of the previous level
			// (generation order), so hot lineages nest: the heavily
			// fanned head of each level descends from the head of the
			// level above, as in real category hierarchies where a few
			// top categories own most of the entities.
			np := (size + 3) / 7
			if np < 1 {
				np = 1
			}
			if np > len(prev) {
				np = len(prev)
			}
			parents := make([]hierarchy.NodeID, np)
			copy(parents, prev[:np])
			fan := make([]int, np)
			// Every designated parent gets one child (min fanout 1), then
			// the rest go to a strongly skewed head so a handful of
			// parents reach large fanouts (clamped at MaxFanout).
			for i := range fan {
				fan[i] = 1
			}
			for extra := size - np; extra > 0; {
				x := r.Float64()
				i := int(float64(np) * x * x * x)
				if i >= np {
					i = np - 1
				}
				placed := false
				for j := 0; j < np; j++ {
					k := (i + j) % np
					if fan[k] < cfg.MaxFanout {
						fan[k]++
						extra--
						placed = true
						break
					}
				}
				if !placed {
					break // every designated parent is at MaxFanout
				}
			}
			var next []hierarchy.NodeID
			for i, p := range parents {
				for c := 0; c < fan[i]; c++ {
					n := h.Add(p, namer.next())
					if d := h.Depth(n); d < len(out.ByDepth) {
						out.ByDepth[d][dom] = append(out.ByDepth[d][dom], n)
					}
					next = append(next, n)
				}
			}
			prev = next
		}
	}
	return out
}

// levelSizes splits budget across nlevels with the proportions of the
// default Table 2 shape.
func levelSizes(budget, nlevels int) []int {
	fracs := defaultFracs(nlevels)
	out := make([]int, nlevels)
	used := 0
	for i, f := range fracs {
		out[i] = int(f * float64(budget))
		used += out[i]
	}
	out[nlevels-2] += budget - used // dump the remainder into the bulk level
	return out
}

// defaultFracs returns per-level fractions: slow growth, a bulky
// penultimate level, and a thinner final level.
func defaultFracs(n int) []float64 {
	switch n {
	case 1:
		return []float64{1}
	case 2:
		return []float64{0.3, 0.7}
	case 3:
		return []float64{0.05, 0.65, 0.30}
	case 4:
		return []float64{0.025, 0.15, 0.56, 0.265}
	default:
		f := make([]float64, n)
		f[0] = 0.0033
		f[1] = 0.0213
		f[2] = 0.1422
		f[n-2] = 0.5689
		f[n-1] = 0.2643
		// Any intermediate levels (n > 5) share what little is left.
		left := 1 - (f[0] + f[1] + f[2] + f[n-2] + f[n-1])
		for i := 3; i < n-2; i++ {
			f[i] = left / float64(n-5)
		}
		return f
	}
}

// namer produces unique pronounceable tokens ("karimo", "sentalo42").
type namer struct {
	r    *rng.RNG
	seen map[string]bool
	n    int
}

func newNamer(r *rng.RNG) *namer {
	return &namer{r: r, seen: map[string]bool{"root": true, "food": true, "location": true}}
}

var (
	consonants = []byte("bcdfgklmnprstvz")
	vowels     = []byte("aeiou")
)

func (nm *namer) next() string {
	for {
		syl := 2 + nm.r.Intn(2)
		b := make([]byte, 0, syl*2+4)
		for i := 0; i < syl; i++ {
			b = append(b, consonants[nm.r.Intn(len(consonants))], vowels[nm.r.Intn(len(vowels))])
		}
		name := string(b)
		if nm.seen[name] {
			nm.n++
			name = fmt.Sprintf("%s%d", name, nm.n)
		}
		if !nm.seen[name] {
			nm.seen[name] = true
			return name
		}
	}
}
