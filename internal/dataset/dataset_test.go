package dataset

import (
	"reflect"
	"strings"
	"testing"

	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
)

func TestGenHierarchyTable2(t *testing.T) {
	hr := GenHierarchy(DefaultHierarchy())
	s := hr.H.ComputeStats()
	if s.Nodes != 4222 {
		t.Errorf("Nodes = %d, want 4222", s.Nodes)
	}
	if s.Height != 6 {
		t.Errorf("Height = %d, want 6", s.Height)
	}
	if s.AvgFanout != 7 {
		t.Errorf("AvgFanout = %d, want 7", s.AvgFanout)
	}
	if s.MaxFanout != 49 {
		t.Errorf("MaxFanout = %d, want 49", s.MaxFanout)
	}
	if s.MinFanout != 1 {
		t.Errorf("MinFanout = %d, want 1", s.MinFanout)
	}
	// Both domains are populated at every depth.
	for d := 1; d <= 6; d++ {
		if len(hr.NodesAt(0, d)) == 0 || len(hr.NodesAt(1, d)) == 0 {
			t.Errorf("depth %d missing a domain: food=%d loc=%d",
				d, len(hr.NodesAt(0, d)), len(hr.NodesAt(1, d)))
		}
	}
	// Unique names: every name resolves to exactly one node.
	for _, n := range hr.H.Names() {
		if got := len(hr.H.Lookup(n)); got != 1 {
			t.Errorf("name %q maps to %d nodes", n, got)
		}
	}
}

func TestGenHierarchyDeterminism(t *testing.T) {
	a := GenHierarchy(DefaultHierarchy())
	b := GenHierarchy(DefaultHierarchy())
	if a.H.Len() != b.H.Len() {
		t.Fatal("non-deterministic node count")
	}
	for i := 0; i < a.H.Len(); i++ {
		n := hierarchy.NodeID(i)
		if a.H.Name(n) != b.H.Name(n) || a.H.Parent(n) != b.H.Parent(n) {
			t.Fatalf("node %d differs between runs", i)
		}
	}
	c := GenHierarchy(HierarchyConfig{Seed: 2, Nodes: 4222, Height: 6, MaxFanout: 49})
	same := true
	for i := 0; i < a.H.Len() && i < c.H.Len(); i++ {
		if a.H.Name(hierarchy.NodeID(i)) != c.H.Name(hierarchy.NodeID(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different hierarchies")
	}
}

func TestGenHierarchySmallConfigs(t *testing.T) {
	for _, cfg := range []HierarchyConfig{
		{Seed: 3, Nodes: 50, Height: 3, MaxFanout: 5},
		{Seed: 4, Nodes: 200, Height: 4, MaxFanout: 10},
		{Seed: 5, Nodes: 1000, Height: 5, MaxFanout: 30},
		{Seed: 6, Nodes: 1, Height: 1, MaxFanout: 0}, // clamped
	} {
		hr := GenHierarchy(cfg)
		s := hr.H.ComputeStats()
		if s.Height < 1 {
			t.Errorf("cfg %+v: degenerate height %d", cfg, s.Height)
		}
		if s.Nodes < 4 {
			t.Errorf("cfg %+v: too few nodes %d", cfg, s.Nodes)
		}
	}
}

func TestGenRecordsTable3(t *testing.T) {
	hr := GenHierarchy(DefaultHierarchy())
	poi := GenRecords(hr, POIConfig(5000))
	st := ComputeCollectionStats(hr.H, poi.Records)
	if st.Size != 5000 {
		t.Errorf("POI size = %d", st.Size)
	}
	if st.AvgLen < 10 || st.AvgLen > 12 {
		t.Errorf("POI AvgLen = %d, want ≈11", st.AvgLen)
	}
	if st.MaxLen > 21 || st.MinLen < 2 {
		t.Errorf("POI bounds = [%d, %d], want within [2, 21]", st.MinLen, st.MaxLen)
	}
	if st.AvgDep != 4 {
		t.Errorf("POI AvgDep = %d, want 4", st.AvgDep)
	}
	if len(poi.Truth) == 0 {
		t.Error("POI should have duplicate ground truth")
	}
	tw := GenRecords(hr, TweetConfig(5000))
	st = ComputeCollectionStats(hr.H, tw.Records)
	if st.AvgLen < 7 || st.AvgLen > 9 {
		t.Errorf("Tweet AvgLen = %d, want ≈8", st.AvgLen)
	}
	if st.AvgDep != 5 {
		t.Errorf("Tweet AvgDep = %d, want 5", st.AvgDep)
	}
}

func TestGenRecordsDeterminismAndTruth(t *testing.T) {
	hr := GenHierarchy(DefaultHierarchy())
	a := GenRecords(hr, POIConfig(500))
	b := GenRecords(hr, POIConfig(500))
	if !reflect.DeepEqual(a.Records, b.Records) || !reflect.DeepEqual(a.Truth, b.Truth) {
		t.Error("GenRecords must be deterministic")
	}
	// Truth pairs are well-formed and transitive within clusters.
	for p := range a.Truth {
		if p[0] >= p[1] || p[0] < 0 || p[1] >= len(a.Records) {
			t.Errorf("malformed truth pair %v", p)
		}
	}
	// Spot-check transitivity: if (a,b) and (b,c) then (a,c).
	for p := range a.Truth {
		for q := range a.Truth {
			if p[1] == q[0] {
				x, y := p[0], q[1]
				if !a.Truth[[2]int{x, y}] {
					t.Fatalf("truth not transitive: %v, %v but no (%d,%d)", p, q, x, y)
				}
			}
		}
	}
}

func TestGenPub(t *testing.T) {
	pub := GenPub(DefaultPub())
	st := ComputeCollectionStats(pub.H, pub.Records)
	if st.Size != 1879 {
		t.Errorf("Pub size = %d, want 1879", st.Size)
	}
	if st.AvgLen < 5 || st.AvgLen > 7 {
		t.Errorf("Pub AvgLen = %d, want ≈6", st.AvgLen)
	}
	if st.AvgDep != 3 {
		t.Errorf("Pub AvgDep = %d, want 3 (keywords at the leaf level)", st.AvgDep)
	}
	if pub.H.Height() != 3 {
		t.Errorf("Pub hierarchy height = %d, want 3", pub.H.Height())
	}
	if len(pub.Truth) < 100 {
		t.Errorf("Pub truth pairs = %d, too few", len(pub.Truth))
	}
	if pub.Synonyms.Len() == 0 {
		t.Error("Pub should ship venue-abbreviation synonym rules")
	}
}

func TestGenRes(t *testing.T) {
	hr := GenHierarchy(DefaultHierarchy())
	res := GenRes(hr, DefaultRes())
	st := ComputeCollectionStats(res.H, res.Records)
	if st.Size != 864 {
		t.Errorf("Res size = %d, want 864", st.Size)
	}
	if st.MinLen != 5 || st.MaxLen != 5 {
		t.Errorf("Res lengths = [%d, %d], want exactly 5", st.MinLen, st.MaxLen)
	}
	if st.AvgDep < 4 || st.AvgDep > 5 {
		t.Errorf("Res AvgDep = %d, want ≈5", st.AvgDep)
	}
	if len(res.Truth) < 100 {
		t.Errorf("Res truth pairs = %d, too few", len(res.Truth))
	}
	// Street-kind tokens come from the synonym groups.
	found := false
	for _, rec := range res.Records {
		if res.Synonyms.Canonical(rec[2]) != rec[2] || rec[2] == "st" || rec[2] == "ave" || rec[2] == "dr" || rec[2] == "blvd" || rec[2] == "rd" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no street-kind tokens found in Res records")
	}
}

func TestTypoAndHierSwap(t *testing.T) {
	hr := GenHierarchy(HierarchyConfig{Seed: 9, Nodes: 100, Height: 4, MaxFanout: 8})
	r := newTestRNG()
	for i := 0; i < 50; i++ {
		s := typo(r, "burgerking")
		if s == "" {
			t.Error("typo produced empty token")
		}
	}
	if typo(r, "") != "" {
		t.Error("typo of empty string should be empty")
	}
	// hierSwap returns a sibling or parent name.
	h := hr.H
	for i := 3; i < h.Len(); i++ {
		n := hierarchy.NodeID(i)
		got := hierSwap(r, h, n)
		p := h.Parent(n)
		ok := got == h.Name(p)
		for _, s := range h.Children(p) {
			if h.Name(s) == got {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("hierSwap(%s) = %q is neither parent nor sibling", h.Name(n), got)
		}
	}
	if got := hierSwap(r, h, h.Root()); got != h.Name(h.Root()) {
		t.Errorf("hierSwap(root) = %q, want root name", got)
	}
}

func TestComputeCollectionStatsEdge(t *testing.T) {
	h := hierarchy.New("Root")
	st := ComputeCollectionStats(h, nil)
	if st.Size != 0 || st.MinLen != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	st = ComputeCollectionStats(h, [][]string{{"a"}, {"b", "c"}})
	if st.Size != 2 || st.MinLen != 1 || st.MaxLen != 2 || st.AvgDep != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNamerUnique(t *testing.T) {
	nm := newNamer(newTestRNG())
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		n := nm.next()
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
		if strings.ToLower(n) != n {
			t.Fatalf("name %q not lowercase", n)
		}
	}
}

func newTestRNG() *rng.RNG { return rng.New(99) }
