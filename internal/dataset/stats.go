package dataset

import (
	"strings"

	"kjoin/internal/hierarchy"
)

// CollectionStats describes a record collection in the format of the
// paper's Table 3.
type CollectionStats struct {
	Size   int
	AvgLen int
	MaxLen int
	MinLen int
	AvgDep int // average hierarchy depth of entity elements, rounded
}

// ComputeCollectionStats measures records against h: lengths in tokens
// and the average depth of the elements that match a hierarchy node by
// name (case-insensitive).
func ComputeCollectionStats(h *hierarchy.Hierarchy, records [][]string) CollectionStats {
	st := CollectionStats{Size: len(records), MinLen: 1 << 30}
	if len(records) == 0 {
		st.MinLen = 0
		return st
	}
	nameDepth := map[string]int{}
	for _, n := range h.Names() {
		if ns := h.Lookup(n); len(ns) > 0 {
			nameDepth[strings.ToLower(n)] = h.Depth(ns[0])
		}
	}
	totalLen := 0
	depSum, depCnt := 0, 0
	for _, rec := range records {
		l := len(rec)
		totalLen += l
		if l > st.MaxLen {
			st.MaxLen = l
		}
		if l < st.MinLen {
			st.MinLen = l
		}
		for _, t := range rec {
			if d, ok := nameDepth[strings.ToLower(t)]; ok {
				depSum += d
				depCnt++
			}
		}
	}
	st.AvgLen = (totalLen + len(records)/2) / len(records)
	if depCnt > 0 {
		st.AvgDep = (depSum + depCnt/2) / depCnt
	}
	return st
}
