package dataset

import (
	"kjoin/internal/hierarchy"
	"kjoin/internal/rng"
)

// Collection is a generated dataset: tokenized records plus the
// duplicate-cluster ground truth (pairs of record indices, X < Y).
type Collection struct {
	Records [][]string
	Truth   map[[2]int]bool
}

// RecordConfig controls GenRecords, the POI/Tweet-style generator.
type RecordConfig struct {
	Seed uint64
	N    int
	// Record length distribution (token counts), per Table 3.
	AvgLen, MinLen, MaxLen int
	// AvgDepth is the target mean depth of entity elements.
	AvgDepth float64
	// DepthDist optionally fixes the entity depth distribution
	// (DepthDist[d] is the probability of depth d); when nil a
	// triangular distribution around AvgDepth is used.
	DepthDist []float64
	// EntityFrac is the fraction of tokens drawn from the hierarchy.
	EntityFrac float64
	// FreeVocab is the size of the non-entity token vocabulary.
	FreeVocab int
	// DupRate is the fraction of records generated as near-duplicates of
	// earlier records (these populate Truth).
	DupRate float64
	// MaxEdits bounds the mutations applied to a duplicate.
	MaxEdits int
}

// POIConfig reproduces the POI rows of Table 3: average length 11,
// max 21, min 2, average element depth 4.
func POIConfig(n int) RecordConfig {
	return RecordConfig{
		Seed: 11, N: n,
		AvgLen: 11, MinLen: 2, MaxLen: 21,
		AvgDepth: 4, EntityFrac: 1.0,
		DepthDist: []float64{0, 0, 0, 0, 0.65, 0.25, 0.10},
		FreeVocab: 12, DupRate: 0.2, MaxEdits: 3,
	}
}

// TweetConfig reproduces the Tweet rows of Table 3: average length 8,
// max 23, min 2, average element depth 5.
func TweetConfig(n int) RecordConfig {
	return RecordConfig{
		Seed: 13, N: n,
		AvgLen: 8, MinLen: 2, MaxLen: 23,
		AvgDepth: 5, EntityFrac: 1.0,
		DepthDist: []float64{0, 0, 0, 0, 0, 0.60, 0.40},
		FreeVocab: 15, DupRate: 0.15, MaxEdits: 3,
	}
}

// GenRecords generates a collection of tokenized records over the
// hierarchy: each record mixes entity tokens (hierarchy node names,
// depths centred on AvgDepth) with skewed free tokens, and DupRate of
// the records are mutated near-duplicates of earlier ones.
func GenRecords(hr *Hier, cfg RecordConfig) *Collection {
	r := rng.New(cfg.Seed)
	out := &Collection{Truth: map[[2]int]bool{}}

	// Free vocabulary: non-entity tokens (street words, descriptors)
	// drawn with Zipf skew — real POI/Tweet corpora reuse a small hot
	// vocabulary heavily, which is what makes coarse signatures
	// non-selective in the paper's filtering experiments.
	nm := newNamer(rng.New(cfg.Seed ^ 0xfeed))
	vocab := make([]string, cfg.FreeVocab)
	for i := range vocab {
		vocab[i] = nm.next()
	}
	freeTok := func() string {
		return vocab[r.Intn(len(vocab))]
	}

	// Depth sampling: the configured distribution, or triangular around
	// AvgDepth.
	height := hr.H.Height()
	depthOf := func() int {
		if len(cfg.DepthDist) > 0 {
			u := r.Float64()
			acc := 0.0
			for d, w := range cfg.DepthDist {
				acc += w
				if u < acc {
					if d > height {
						return height
					}
					return d
				}
			}
		}
		d := int(cfg.AvgDepth + 0.5)
		switch r.Intn(6) {
		case 0:
			d--
		case 1:
			d++
		case 2:
			if r.Intn(2) == 0 {
				d -= 2
			} else {
				d++
			}
		}
		if d < 1 {
			d = 1
		}
		if d > height {
			d = height
		}
		return d
	}
	// Entity sampling mirrors a regional crawl: only a popular subset of
	// each depth is ever referenced (one metro area's streets, a city's
	// cuisine categories), drawn with Zipf skew. Every signature is
	// therefore frequent — there are no selective identifier tokens —
	// which is the regime where coarse node signatures collapse onto a
	// few hot ancestors while deep signatures stay comparatively rare,
	// the df profile the paper's depth-aware filtering exploits.
	h := hr.H
	// The popular set of each depth is the head of the level in
	// generation order; GenHierarchy nests hot lineages, so these heads
	// descend from a handful of shallow ancestors — the hot-branch
	// structure of a regional crawl. Shallow sets are tiny (every
	// shallow signature is frequent), deep sets are wide (deep
	// signatures are rare), which is the df profile the paper's
	// depth-aware filtering exploits.
	popCap := [7]int{1, 1, 2, 6, 45, 2400, 1500}
	var popular [2][7][]hierarchy.NodeID
	for dom := 0; dom < 2; dom++ {
		popular[dom][1] = hr.NodesAt(dom, 1)
		for d := 2; d <= height && d < 7; d++ {
			// Children of the previous popular set, in generation order:
			// the deep pools lie entirely under the small shallow pools.
			var pool []hierarchy.NodeID
			for _, p := range popular[dom][d-1] {
				pool = append(pool, h.Children(p)...)
			}
			if len(pool) == 0 {
				pool = hr.NodesAt(dom, d)
			}
			k := popCap[d]
			if k > len(pool) {
				k = len(pool)
			}
			popular[dom][d] = pool[:k]
		}
	}
	entityTok := func() string {
		d := depthOf()
		dom := r.Intn(2)
		for d >= 1 {
			if pool := popular[dom][d]; len(pool) > 0 {
				return h.Name(pool[r.Intn(len(pool))])
			}
			d--
		}
		return freeTok()
	}

	// newTok draws a token the way base records do: entity or free by
	// the configured fraction. Mutations insert through it too, so
	// near-duplicates do not introduce out-of-distribution rare tokens.
	newTok := func() string {
		if r.Float64() < cfg.EntityFrac {
			return entityTok()
		}
		return freeTok()
	}

	genLen := func() int {
		// Sum of three uniforms ≈ normal with mean AvgLen after scaling.
		a := cfg.AvgLen
		l := (r.Intn(a+1) + r.Intn(a+1) + r.Intn(a+1) + 1) * 2 / 3
		if l < cfg.MinLen {
			l = cfg.MinLen
		}
		if l > cfg.MaxLen {
			l = cfg.MaxLen
		}
		return l
	}

	clusterOf := make([]int, 0, cfg.N) // root record of each record's cluster
	members := map[int][]int{}         // cluster root -> member records
	for i := 0; i < cfg.N; i++ {
		if i > 0 && r.Float64() < cfg.DupRate {
			// Near-duplicate of a random earlier record.
			base := r.Intn(i)
			rec := mutate(r, hr, out.Records[base], cfg, newTok)
			out.Records = append(out.Records, rec)
			root := clusterOf[base]
			clusterOf = append(clusterOf, root)
			// Ground truth: pair with every member of the cluster.
			for _, j := range members[root] {
				out.Truth[[2]int{j, i}] = true
			}
			members[root] = append(members[root], i)
			continue
		}
		l := genLen()
		rec := make([]string, 0, l)
		seen := map[string]bool{}
		for len(rec) < l {
			t := newTok()
			if !seen[t] {
				seen[t] = true
				rec = append(rec, t)
			}
		}
		out.Records = append(out.Records, rec)
		clusterOf = append(clusterOf, i)
		members[i] = []int{i}
	}
	return out
}

// mutate applies 1..MaxEdits random mutations to a copy of rec: a typo in
// one token, an entity swap to a sibling or parent node, a token drop, or
// a token insertion. Drops and inserts respect the configured length
// bounds.
func mutate(r *rng.RNG, hr *Hier, rec []string, cfg RecordConfig, freeTok func() string) []string {
	out := append([]string(nil), rec...)
	edits := 1 + r.Intn(cfg.MaxEdits)
	for e := 0; e < edits && len(out) > 1; e++ {
		i := r.Intn(len(out))
		switch r.Intn(10) {
		case 0, 1, 2, 3: // typo
			out[i] = typo(r, out[i])
		case 4, 5, 6: // hierarchy substitution
			if nodes := hr.H.Lookup(out[i]); len(nodes) > 0 {
				out[i] = hierSwap(r, hr.H, nodes[0])
			} else {
				out[i] = typo(r, out[i])
			}
		case 7: // drop
			if len(out) > cfg.MinLen {
				out = append(out[:i], out[i+1:]...)
			}
		default: // insert
			if len(out) < cfg.MaxLen {
				out = append(out, freeTok())
			}
		}
	}
	return out
}

// typo applies one random character edit (substitute, delete or
// transpose) to t.
func typo(r *rng.RNG, t string) string {
	if len(t) == 0 {
		return t
	}
	b := []byte(t)
	p := r.Intn(len(b))
	switch r.Intn(3) {
	case 0: // substitute
		b[p] = byte('a' + r.Intn(26))
	case 1: // delete
		if len(b) > 1 {
			b = append(b[:p], b[p+1:]...)
		} else {
			b[p] = byte('a' + r.Intn(26))
		}
	default: // transpose
		if p+1 < len(b) {
			b[p], b[p+1] = b[p+1], b[p]
		} else if p > 0 {
			b[p], b[p-1] = b[p-1], b[p]
		}
	}
	return string(b)
}

// hierSwap replaces node n with a nearby node: a sibling (same parent)
// or its parent — the "Californian food" vs "American food" error class.
func hierSwap(r *rng.RNG, h *hierarchy.Hierarchy, n hierarchy.NodeID) string {
	p := h.Parent(n)
	if p < 0 {
		return h.Name(n)
	}
	if sibs := h.Children(p); len(sibs) > 1 && r.Intn(2) == 0 {
		for tries := 0; tries < 4; tries++ {
			s := sibs[r.Intn(len(sibs))]
			if s != n {
				return h.Name(s)
			}
		}
	}
	return h.Name(p)
}
