// Package fault abstracts the filesystem operations the durability
// layer performs (WAL appends, atomic snapshot writes, generation
// scans) behind an FS interface with two implementations: OS, which is
// the real thing, and Injector, which wraps another FS with a scripted
// schedule of deterministic failures — fail the Nth write, short-write
// a record, fail an fsync, crash after a rename. A scripted "crash"
// models process death: every subsequent operation fails and data
// written but never fsynced is dropped, which is exactly the state a
// recovery path must be able to stand up from.
//
// The interface is deliberately small: it covers what the durability
// code uses and nothing more, so the injector can account for every
// byte that reaches "disk".
package fault

import (
	"io"
	iofs "io/fs"
	"os"
)

// File is the open-file surface the durability layer uses. *os.File
// satisfies it directly.
//
//kjoinlint:durable
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage. Data not synced is lost
	// by a crash.
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
}

// FS is the filesystem surface the durability layer uses.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	// CreateTemp creates a temp file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate changes the size of the named file.
	Truncate(name string, size int64) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]iofs.DirEntry, error)
	// Stat stats a file.
	Stat(name string) (iofs.FileInfo, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(name string, perm iofs.FileMode) error
	// SyncDir fsyncs a directory, making renames and creates in it
	// durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OS) Stat(name string) (iofs.FileInfo, error) { return os.Stat(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(name string, perm iofs.FileMode) error { return os.MkdirAll(name, perm) }

// SyncDir implements FS.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
