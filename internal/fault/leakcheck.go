package fault

import (
	"net/http"
	"runtime"
	"time"
)

// TB is the subset of testing.TB the goroutine watchdog needs. Keeping
// the dependency to an interface means this package (linked into
// production binaries) never imports testing.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// WatchGoroutines registers a cleanup that fails the test if the
// goroutine count does not settle back to its baseline (plus a small
// slack for the runtime's own background goroutines) within 5 seconds —
// a scatter goroutine, stalled dial, hedge, or migration mover that
// outlived its owner. Call it before starting the machinery under test
// so the baseline excludes everything the test creates.
func WatchGoroutines(t TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+3 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<17)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked: %d running, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
	})
}
