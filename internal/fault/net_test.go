package fault

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// pipeDialer returns a dialer whose every dial yields one end of a
// fresh in-memory pipe; the other end echoes back whatever arrives,
// prefixed with "echo:".
func pipeDialer(t *testing.T) func(ctx context.Context, network, addr string) (net.Conn, error) {
	t.Helper()
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			buf := make([]byte, 1024)
			for {
				n, err := server.Read(buf)
				if err != nil {
					return
				}
				if _, err := server.Write(append([]byte("echo:"), buf[:n]...)); err != nil {
					return
				}
			}
		}()
		return client, nil
	}
}

func TestNetInjectorFailsNthOp(t *testing.T) {
	in := NewNetInjector(pipeDialer(t),
		NetFault{Op: OpConnWrite, N: 2, Mode: NetFail},
		NetFault{Op: OpConnRead, N: 3, Mode: NetHangup},
	)
	c, err := in.DialContext(context.Background(), "tcp", "primary:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 64)
	// Write 1 and read 1 succeed.
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	// Write 2 fires NetFail.
	if _, err := c.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: want ErrInjected, got %v", err)
	}
	// Write 3 proceeds; reads 2 then 3 — the latter is the hangup.
	if _, err := c.Write([]byte("c")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("read 2: %v", err)
	}
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 3: want hangup ErrInjected, got %v", err)
	}
	// Hangup closed the conn: further reads fail too.
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after hangup succeeded")
	}
	if in.Fired() != 2 {
		t.Fatalf("fired %d faults, want 2", in.Fired())
	}
}

func TestNetInjectorTruncateRead(t *testing.T) {
	in := NewNetInjector(pipeDialer(t), NetFault{Op: OpConnRead, N: 1, Mode: NetTruncate, Keep: 3})
	c, err := in.DialContext(context.Background(), "tcp", "primary:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("truncated read: n=%d err=%v, want 3 bytes delivered", n, err)
	}
	if got := string(buf[:n]); got != "ech" {
		t.Fatalf("truncated read delivered %q", got)
	}
	// The cut surfaces on the next operation: the conn is closed.
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after truncate succeeded")
	}
}

func TestNetInjectorStallReleasedByClose(t *testing.T) {
	in := NewNetInjector(pipeDialer(t), NetFault{Op: OpConnRead, N: 1, Mode: NetStall}) // Stall 0 = until close
	c, err := in.DialContext(context.Background(), "tcp", "primary:1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 8))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("released stall: want net.ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read not released by Close")
	}
}

func TestNetInjectorDialFaults(t *testing.T) {
	in := NewNetInjector(pipeDialer(t),
		NetFault{Op: OpDial, N: 1, Mode: NetFail},
		NetFault{Op: OpDial, N: 2, Mode: NetStall},
	)
	if _, err := in.DialContext(context.Background(), "tcp", "primary:1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial 1: want ErrInjected, got %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := in.DialContext(ctx, "tcp", "primary:1"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled dial: want DeadlineExceeded, got %v", err)
	}
	c, err := in.DialContext(context.Background(), "tcp", "primary:1")
	if err != nil {
		t.Fatalf("dial 3 should be clean: %v", err)
	}
	c.Close()
}

func TestNetInjectorAddrScoping(t *testing.T) {
	// The fault targets the 2nd dial of replica-b only; dials of other
	// addresses do not advance its count.
	in := NewNetInjector(pipeDialer(t), NetFault{Op: OpDial, N: 2, Mode: NetFail, Addr: "replica-b"})
	for i, addr := range []string{"replica-b:1", "replica-a:1", "primary:1", "replica-b:1"} {
		c, err := in.DialContext(context.Background(), "tcp", addr)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("dial %d (%s): want ErrInjected, got %v", i, addr, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("dial %d (%s): %v", i, addr, err)
		}
		c.Close()
	}
}

// TestNetInjectorTransport proves the injector composes with a real
// net/http round trip: the first request fails with the injected dial
// fault, the retry succeeds.
func TestNetInjectorTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	in := NewNetInjector(nil, NetFault{Op: OpDial, N: 1, Mode: NetFail})
	client := &http.Client{Transport: in.Transport(), Timeout: 5 * time.Second}
	if _, err := client.Get(ts.URL); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("first request: want injected dial failure, got %v", err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok" {
		t.Fatalf("second request body %q", b)
	}
}

// TestNetInjectorStickyFault: a sticky dial fault is a dead endpoint —
// once reached, it fires on every later dial of that address, and each
// firing counts in Fired.
func TestNetInjectorStickyFault(t *testing.T) {
	in := NewNetInjector(pipeDialer(t),
		NetFault{Op: OpDial, N: 2, Mode: NetFail, Addr: "shard-1", Sticky: true})
	// Dial 1 of shard-1 is clean; dials 2..4 all fail.
	c, err := in.DialContext(context.Background(), "tcp", "shard-1:1")
	if err != nil {
		t.Fatalf("dial 1 should be clean: %v", err)
	}
	c.Close()
	for i := 2; i <= 4; i++ {
		if _, err := in.DialContext(context.Background(), "tcp", "shard-1:1"); !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d: want ErrInjected from the sticky fault, got %v", i, err)
		}
	}
	// Other addresses stay unaffected.
	c, err = in.DialContext(context.Background(), "tcp", "shard-2:1")
	if err != nil {
		t.Fatalf("dial of shard-2: %v", err)
	}
	c.Close()
	if got := in.Fired(); got != 3 {
		t.Fatalf("Fired = %d, want 3 (one per sticky firing)", got)
	}
}

// TestNetInjectorAppend: faults added mid-run count occurrences from
// the moment of the Append, so "the shard dies now" needs no knowledge
// of how many operations already happened.
func TestNetInjectorAppend(t *testing.T) {
	in := NewNetInjector(pipeDialer(t))
	// Some clean traffic first, so the global dial count is nonzero.
	for i := 0; i < 3; i++ {
		c, err := in.DialContext(context.Background(), "tcp", "shard-1:1")
		if err != nil {
			t.Fatalf("warm-up dial %d: %v", i, err)
		}
		c.Close()
	}
	// Unscoped N=1 must mean "the next dial", not "the first ever"
	// (already long past).
	in.Append(NetFault{Op: OpDial, N: 1, Mode: NetFail})
	if _, err := in.DialContext(context.Background(), "tcp", "shard-1:1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("appended unscoped fault did not fire on the next dial: %v", err)
	}
	// An appended sticky scoped fault kills the endpoint from now on.
	in.Append(NetFault{Op: OpDial, N: 1, Mode: NetFail, Addr: "shard-2", Sticky: true})
	for i := 0; i < 2; i++ {
		if _, err := in.DialContext(context.Background(), "tcp", "shard-2:1"); !errors.Is(err, ErrInjected) {
			t.Fatalf("appended sticky dial %d: want ErrInjected, got %v", i, err)
		}
	}
	c, err := in.DialContext(context.Background(), "tcp", "shard-1:1")
	if err != nil {
		t.Fatalf("shard-1 should have recovered after the one-shot fault: %v", err)
	}
	c.Close()
}
