package fault

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"strings"
	"sync"
)

// ErrInjected is returned by an operation a scripted fault failed.
var ErrInjected = errors.New("fault: injected failure")

// ErrCrashed is returned by every operation after a scripted crash: the
// "process" is dead as far as this filesystem is concerned, and only a
// fresh FS over the same directory (the reboot) can see the data again.
var ErrCrashed = errors.New("fault: filesystem crashed")

// Op selects the operation kind a Fault targets.
type Op uint8

const (
	// OpWrite is a File.Write call on a writable file.
	OpWrite Op = iota
	// OpSync is a File.Sync call.
	OpSync
	// OpRename is an FS.Rename call.
	OpRename
	// OpCreate is an FS.CreateTemp call or an OpenFile that creates.
	OpCreate
	// OpRemove is an FS.Remove call.
	OpRemove
	// OpSyncDir is an FS.SyncDir call.
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpCreate:
		return "create"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Mode is what happens when a Fault fires.
type Mode uint8

const (
	// Fail skips the operation and returns ErrInjected. The process
	// keeps running (an EIO the caller must handle).
	Fail Mode = iota
	// ShortWrite performs only Keep bytes of a write, then returns
	// ErrInjected — the torn record a crash mid-write leaves behind.
	// Only meaningful for OpWrite.
	ShortWrite
	// CrashBefore kills the filesystem instead of performing the
	// operation: it and everything after it returns ErrCrashed, and all
	// unsynced data is dropped.
	CrashBefore
	// CrashAfter performs the operation, then kills the filesystem —
	// e.g. a crash right after a snapshot rename, before the WAL was
	// truncated.
	CrashAfter
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case ShortWrite:
		return "short-write"
	case CrashBefore:
		return "crash-before"
	case CrashAfter:
		return "crash-after"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Fault is one scripted failure: the Nth occurrence (1-based) of Op —
// counted among operations whose file path contains Path, when Path is
// non-empty — acts according to Mode.
type Fault struct {
	Op   Op
	N    int
	Mode Mode
	// Path, when non-empty, restricts the count to operations on paths
	// containing it as a substring (e.g. "wal." or "snap.").
	Path string
	// Keep is the number of bytes a ShortWrite actually writes.
	Keep int

	fired bool
}

// Injector wraps an FS with a scripted fault schedule. It is safe for
// concurrent use. The zero value is not usable; use NewInjector.
//
// The crash model: data written to a file but not yet Sync'd lives in
// the page cache; a scripted crash truncates every such file back to
// its last synced size, then fails all further operations with
// ErrCrashed. Recovery code is expected to reopen the directory with a
// fresh FS (the reboot) and stand up from what remains.
type Injector struct {
	inner FS

	mu      sync.Mutex
	crashed bool             // guarded by mu
	counts  map[Op]int       // guarded by mu
	script  []Fault          // guarded by mu
	fired   int              // guarded by mu
	dirty   map[string]int64 // guarded by mu: path → synced size, for files with unsynced bytes
}

// NewInjector returns an Injector over inner executing the scripted
// faults in order of occurrence.
func NewInjector(inner FS, script ...Fault) *Injector {
	return &Injector{
		inner:  inner,
		counts: make(map[Op]int),
		script: append([]Fault(nil), script...),
		dirty:  make(map[string]int64),
	}
}

// Crashed reports whether a scripted crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Fired returns how many scripted faults have fired.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Crash kills the filesystem now, outside any scripted fault: unsynced
// data is dropped and every later operation fails with ErrCrashed. It
// is the harness's "kill -9 at an arbitrary point".
func (in *Injector) Crash() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crash()
}

// crash drops unsynced data and marks the filesystem dead. Caller holds mu.
func (in *Injector) crash() {
	if in.crashed {
		return
	}
	in.crashed = true
	for path, synced := range in.dirty {
		// Best effort: the file may have been renamed or removed since.
		_ = in.inner.Truncate(path, synced)
	}
	in.dirty = make(map[string]int64)
}

// step accounts one operation and returns the mode to apply, or ok =
// false (with ErrCrashed) when the filesystem is already dead. Caller
// must treat CrashBefore/CrashAfter by calling crashNow around the
// inner op. Caller holds mu.
func (in *Injector) step(op Op, path string) (Fault, bool, error) {
	if in.crashed {
		return Fault{}, false, ErrCrashed
	}
	in.counts[op]++
	n := in.counts[op]
	for i := range in.script {
		f := &in.script[i]
		if f.fired || f.Op != op {
			continue
		}
		if f.Path != "" {
			if !strings.Contains(path, f.Path) {
				continue
			}
			// Path-scoped faults keep their own count: recount among
			// matching ops via a side counter keyed by the fault index.
			f.N--
			if f.N > 0 {
				continue
			}
		} else if n != f.N {
			continue
		}
		f.fired = true
		in.fired++
		return *f, true, nil
	}
	return Fault{}, false, nil
}

// injFile wraps a writable file, tracking synced vs written size so a
// crash can drop the unsynced suffix.
type injFile struct {
	in     *Injector
	f      File
	path   string
	size   int64 // bytes present in the file (protected by in.mu)
	synced int64 // size at last successful Sync (protected by in.mu)
}

// Write implements File.
func (w *injFile) Write(p []byte) (int, error) {
	w.in.mu.Lock()
	f, hit, err := w.in.step(OpWrite, w.path)
	if err != nil {
		w.in.mu.Unlock()
		return 0, err
	}
	if hit {
		switch f.Mode {
		case Fail:
			w.in.mu.Unlock()
			return 0, fmt.Errorf("write %s: %w", w.path, ErrInjected)
		case ShortWrite:
			keep := f.Keep
			if keep > len(p) {
				keep = len(p)
			}
			n, _ := w.f.Write(p[:keep])
			w.size += int64(n)
			w.in.dirty[w.path] = w.synced
			w.in.mu.Unlock()
			return n, fmt.Errorf("short write %s (%d of %d bytes): %w", w.path, n, len(p), ErrInjected)
		case CrashBefore:
			w.in.crash()
			w.in.mu.Unlock()
			return 0, ErrCrashed
		case CrashAfter:
			n, werr := w.f.Write(p)
			w.size += int64(n)
			w.in.dirty[w.path] = w.synced
			w.in.crash()
			w.in.mu.Unlock()
			if werr != nil {
				return n, werr
			}
			return n, ErrCrashed
		}
	}
	n, werr := w.f.Write(p)
	w.size += int64(n)
	if w.size > w.synced {
		w.in.dirty[w.path] = w.synced
	}
	w.in.mu.Unlock()
	return n, werr
}

// Sync implements File.
func (w *injFile) Sync() error {
	w.in.mu.Lock()
	f, hit, err := w.in.step(OpSync, w.path)
	if err != nil {
		w.in.mu.Unlock()
		return err
	}
	if hit {
		switch f.Mode {
		case Fail, ShortWrite:
			w.in.mu.Unlock()
			return fmt.Errorf("fsync %s: %w", w.path, ErrInjected)
		case CrashBefore:
			w.in.crash()
			w.in.mu.Unlock()
			return ErrCrashed
		case CrashAfter:
			serr := w.f.Sync()
			if serr == nil {
				w.synced = w.size
				delete(w.in.dirty, w.path)
			}
			w.in.crash()
			w.in.mu.Unlock()
			return ErrCrashed
		}
	}
	serr := w.f.Sync()
	if serr == nil {
		w.synced = w.size
		delete(w.in.dirty, w.path)
	}
	w.in.mu.Unlock()
	return serr
}

// Read implements File.
func (w *injFile) Read(p []byte) (int, error) {
	w.in.mu.Lock()
	dead := w.in.crashed
	w.in.mu.Unlock()
	if dead {
		return 0, ErrCrashed
	}
	return w.f.Read(p)
}

// Close implements File. Unsynced bytes stay tracked: they are still
// only in the page cache and a later crash drops them.
func (w *injFile) Close() error {
	w.in.mu.Lock()
	dead := w.in.crashed
	w.in.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return w.f.Close()
}

// Name implements File.
func (w *injFile) Name() string { return w.path }

// Truncate implements File.
func (w *injFile) Truncate(size int64) error {
	w.in.mu.Lock()
	if w.in.crashed {
		w.in.mu.Unlock()
		return ErrCrashed
	}
	err := w.f.Truncate(size)
	if err == nil {
		w.size = size
		if w.synced > size {
			w.synced = size
		}
		if w.size > w.synced {
			w.in.dirty[w.path] = w.synced
		} else {
			delete(w.in.dirty, w.path)
		}
	}
	w.in.mu.Unlock()
	return err
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	in.mu.Unlock()
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	var size int64
	if st, serr := in.inner.Stat(name); serr == nil {
		size = st.Size()
	}
	// Contents present at open are treated as durable; only bytes this
	// process writes are at risk.
	return &injFile{in: in, f: f, path: name, size: size, synced: size}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	in.mu.Lock()
	f, hit, err := in.step(OpCreate, dir+"/"+pattern)
	if err != nil {
		in.mu.Unlock()
		return nil, err
	}
	if hit {
		switch f.Mode {
		case Fail, ShortWrite:
			in.mu.Unlock()
			return nil, fmt.Errorf("create temp in %s: %w", dir, ErrInjected)
		case CrashBefore:
			in.crash()
			in.mu.Unlock()
			return nil, ErrCrashed
		case CrashAfter:
			tf, terr := in.inner.CreateTemp(dir, pattern)
			if terr == nil {
				_ = tf.Close() // nothing written; the file exists only to be swept
				// The empty temp file exists (its dir entry may or may
				// not survive a real crash; keeping it exercises the
				// stale-temp sweep).
			}
			in.crash()
			in.mu.Unlock()
			return nil, ErrCrashed
		}
	}
	in.mu.Unlock()
	tf, terr := in.inner.CreateTemp(dir, pattern)
	if terr != nil {
		return nil, terr
	}
	return &injFile{in: in, f: tf, path: tf.Name()}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	in.mu.Lock()
	f, hit, err := in.step(OpRename, newpath)
	if err != nil {
		in.mu.Unlock()
		return err
	}
	if hit {
		switch f.Mode {
		case Fail, ShortWrite:
			in.mu.Unlock()
			return fmt.Errorf("rename %s: %w", newpath, ErrInjected)
		case CrashBefore:
			in.crash()
			in.mu.Unlock()
			return ErrCrashed
		case CrashAfter:
			rerr := in.inner.Rename(oldpath, newpath)
			if rerr == nil {
				if synced, ok := in.dirty[oldpath]; ok {
					delete(in.dirty, oldpath)
					in.dirty[newpath] = synced
				}
			}
			in.crash()
			in.mu.Unlock()
			return ErrCrashed
		}
	}
	rerr := in.inner.Rename(oldpath, newpath)
	if rerr == nil {
		if synced, ok := in.dirty[oldpath]; ok {
			delete(in.dirty, oldpath)
			in.dirty[newpath] = synced
		}
	}
	in.mu.Unlock()
	return rerr
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	in.mu.Lock()
	f, hit, err := in.step(OpRemove, name)
	if err != nil {
		in.mu.Unlock()
		return err
	}
	if hit {
		switch f.Mode {
		case Fail, ShortWrite:
			in.mu.Unlock()
			return fmt.Errorf("remove %s: %w", name, ErrInjected)
		case CrashBefore:
			in.crash()
			in.mu.Unlock()
			return ErrCrashed
		case CrashAfter:
			_ = in.inner.Remove(name)
			in.crash()
			in.mu.Unlock()
			return ErrCrashed
		}
	}
	delete(in.dirty, name)
	in.mu.Unlock()
	return in.inner.Remove(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return in.inner.Truncate(name, size)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]iofs.DirEntry, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	in.mu.Unlock()
	return in.inner.ReadDir(name)
}

// Stat implements FS.
func (in *Injector) Stat(name string) (iofs.FileInfo, error) {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return nil, ErrCrashed
	}
	in.mu.Unlock()
	return in.inner.Stat(name)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(name string, perm iofs.FileMode) error {
	in.mu.Lock()
	if in.crashed {
		in.mu.Unlock()
		return ErrCrashed
	}
	in.mu.Unlock()
	return in.inner.MkdirAll(name, perm)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(name string) error {
	in.mu.Lock()
	f, hit, err := in.step(OpSyncDir, name)
	if err != nil {
		in.mu.Unlock()
		return err
	}
	if hit {
		switch f.Mode {
		case Fail, ShortWrite:
			in.mu.Unlock()
			return fmt.Errorf("fsync dir %s: %w", name, ErrInjected)
		case CrashBefore:
			in.crash()
			in.mu.Unlock()
			return ErrCrashed
		case CrashAfter:
			_ = in.inner.SyncDir(name)
			in.crash()
			in.mu.Unlock()
			return ErrCrashed
		}
	}
	in.mu.Unlock()
	return in.inner.SyncDir(name)
}
