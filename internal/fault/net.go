package fault

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// This file extends the fault package from disks to networks: a
// deterministic faulty net.Conn and dialer for the replication layer's
// chaos tests. The model mirrors the filesystem Injector — a scripted
// schedule of failures keyed to the Nth occurrence of an operation —
// so every run of a chaos test exercises exactly the same fault at
// exactly the same protocol position.

// NetOp selects the operation kind a NetFault targets.
type NetOp uint8

const (
	// OpDial is a DialContext call.
	OpDial NetOp = iota
	// OpConnRead is a Conn.Read call.
	OpConnRead
	// OpConnWrite is a Conn.Write call.
	OpConnWrite
)

func (o NetOp) String() string {
	switch o {
	case OpDial:
		return "dial"
	case OpConnRead:
		return "conn-read"
	case OpConnWrite:
		return "conn-write"
	}
	return fmt.Sprintf("netop(%d)", uint8(o))
}

// NetMode is what happens when a NetFault fires.
type NetMode uint8

const (
	// NetFail fails the operation with ErrInjected: a refused dial, a
	// connection-reset read, a broken-pipe write.
	NetFail NetMode = iota
	// NetStall blocks the operation for Stall (or, when Stall is zero,
	// until the connection is closed — e.g. by the caller's deadline),
	// then proceeds. A dial stall with zero Stall blocks until the
	// dial's context is done.
	NetStall
	// NetTruncate delivers only Keep bytes of a read or write, then
	// closes the connection — the mid-frame cut a failing link leaves.
	NetTruncate
	// NetHangup closes the connection and fails the operation: the peer
	// disconnected.
	NetHangup
)

func (m NetMode) String() string {
	switch m {
	case NetFail:
		return "fail"
	case NetStall:
		return "stall"
	case NetTruncate:
		return "truncate"
	case NetHangup:
		return "hangup"
	}
	return fmt.Sprintf("netmode(%d)", uint8(m))
}

// NetFault is one scripted network failure: the Nth occurrence
// (1-based) of Op — counted among operations whose dial address
// contains Addr, when Addr is non-empty — acts according to Mode.
type NetFault struct {
	Op   NetOp
	N    int
	Mode NetMode
	// Addr, when non-empty, restricts the count to connections dialed to
	// addresses containing it as a substring (one endpoint of several).
	Addr string
	// Keep is how many bytes a NetTruncate delivers before the cut.
	Keep int
	// Stall is how long a NetStall blocks (0 = until close/context).
	Stall time.Duration
	// Sticky makes the fault permanent: once its position is reached it
	// fires on that operation and every later matching one, instead of
	// being consumed. A sticky dial failure is a dead endpoint; a sticky
	// dial stall is a black-holed one. Entries are matched in script
	// order, so a sticky fault shadows any later entry for the same
	// operation and address scope — list it last among those.
	Sticky bool

	fired bool
}

// NetInjector wraps a dialer with a scripted network-fault schedule. It
// is safe for concurrent use; operation counts are global across every
// connection it has dialed, so a schedule addresses "the 3rd read this
// process performs", which is deterministic for a single-threaded
// client loop such as a replication follower.
type NetInjector struct {
	dial func(ctx context.Context, network, addr string) (net.Conn, error)

	mu     sync.Mutex
	counts map[NetOp]int // guarded by mu
	script []NetFault    // guarded by mu
	fired  int           // guarded by mu
}

// NewNetInjector returns an injector over dial (nil → net.Dialer)
// executing the scripted faults in order of occurrence.
func NewNetInjector(dial func(ctx context.Context, network, addr string) (net.Conn, error), script ...NetFault) *NetInjector {
	if dial == nil {
		d := &net.Dialer{}
		dial = d.DialContext
	}
	return &NetInjector{
		dial:   dial,
		counts: make(map[NetOp]int),
		script: append([]NetFault(nil), script...),
	}
}

// Fired returns how many scripted faults have fired (a sticky fault
// counts once per firing).
func (in *NetInjector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Append adds faults to the live schedule. Their occurrence counts
// start from the next matching operation, not from the injector's
// creation — "the shard dies now" is Append of a sticky first-dial
// failure at the moment the test wants the failure to begin.
func (in *NetInjector) Append(script ...NetFault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range script {
		f := script[i]
		if f.Addr == "" {
			// Unscoped entries are positional against the global count;
			// rebase them so N counts from "now" like scoped entries do.
			f.N += in.counts[f.Op]
		}
		in.script = append(in.script, f)
	}
}

// Transport returns an http.Transport dialing through the injector.
// Keep-alives are disabled so connection (and therefore operation)
// counts do not depend on pool reuse timing.
func (in *NetInjector) Transport() *http.Transport {
	return &http.Transport{DialContext: in.DialContext, DisableKeepAlives: true}
}

// step accounts one operation and returns the fault to apply, if any.
func (in *NetInjector) step(op NetOp, addr string) (NetFault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	n := in.counts[op]
	for i := range in.script {
		f := &in.script[i]
		if f.Op != op || (f.fired && !f.Sticky) {
			continue
		}
		if f.Addr != "" {
			if !strings.Contains(addr, f.Addr) {
				continue
			}
			if !f.fired {
				// Addr-scoped faults keep their own count among matching ops.
				f.N--
				if f.N > 0 {
					continue
				}
			}
		} else if !f.fired && n != f.N {
			continue
		}
		// A fired sticky fault falls through: it hits every later match.
		f.fired = true
		in.fired++
		return *f, true
	}
	return NetFault{}, false
}

// DialContext dials through the injector, applying any scripted dial
// fault and wrapping the resulting connection so read/write faults can
// fire on it.
func (in *NetInjector) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	if f, hit := in.step(OpDial, addr); hit {
		switch f.Mode {
		case NetFail, NetTruncate, NetHangup:
			return nil, fmt.Errorf("dial %s: %w", addr, ErrInjected)
		case NetStall:
			if f.Stall <= 0 {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			t := time.NewTimer(f.Stall)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-t.C:
				// Stall elapsed; the dial then proceeds (a slow network,
				// not a dead one).
			}
		}
	}
	c, err := in.dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, in: in, addr: addr, closed: make(chan struct{})}, nil
}

// faultConn applies scripted read/write faults to one connection.
type faultConn struct {
	net.Conn
	in        *NetInjector
	addr      string
	closeOnce sync.Once
	closed    chan struct{}
}

// Close implements net.Conn and releases any stalled operation.
func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// stall blocks for d, or until the connection is closed.
func (c *faultConn) stall(d time.Duration) error {
	if d <= 0 {
		<-c.closed
		return fmt.Errorf("stall %s: %w", c.addr, net.ErrClosed)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return fmt.Errorf("stall %s: %w", c.addr, net.ErrClosed)
	}
}

// Read implements net.Conn.
func (c *faultConn) Read(p []byte) (int, error) {
	f, hit := c.in.step(OpConnRead, c.addr)
	if !hit {
		return c.Conn.Read(p)
	}
	switch f.Mode {
	case NetFail:
		return 0, fmt.Errorf("read %s: %w", c.addr, ErrInjected)
	case NetStall:
		if err := c.stall(f.Stall); err != nil {
			return 0, err
		}
		return c.Conn.Read(p)
	case NetTruncate:
		keep := f.Keep
		if keep > len(p) {
			keep = len(p)
		}
		var n int
		var rerr error
		if keep > 0 {
			n, rerr = c.Conn.Read(p[:keep])
		}
		c.Close()
		if rerr != nil {
			return n, rerr
		}
		if n == 0 {
			return 0, fmt.Errorf("truncated read %s: %w", c.addr, ErrInjected)
		}
		// The delivered prefix is real; the cut surfaces on the next read
		// of the now-closed connection.
		return n, nil
	case NetHangup:
		c.Close()
		return 0, fmt.Errorf("hangup %s: %w", c.addr, ErrInjected)
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *faultConn) Write(p []byte) (int, error) {
	f, hit := c.in.step(OpConnWrite, c.addr)
	if !hit {
		return c.Conn.Write(p)
	}
	switch f.Mode {
	case NetFail:
		return 0, fmt.Errorf("write %s: %w", c.addr, ErrInjected)
	case NetStall:
		if err := c.stall(f.Stall); err != nil {
			return 0, err
		}
		return c.Conn.Write(p)
	case NetTruncate:
		keep := f.Keep
		if keep > len(p) {
			keep = len(p)
		}
		var n int
		if keep > 0 {
			n, _ = c.Conn.Write(p[:keep])
		}
		c.Close()
		return n, fmt.Errorf("truncated write %s (%d of %d bytes): %w", c.addr, n, len(p), ErrInjected)
	case NetHangup:
		c.Close()
		return 0, fmt.Errorf("hangup %s: %w", c.addr, ErrInjected)
	}
	return c.Conn.Write(p)
}
