package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) error {
	t.Helper()
	_, err := f.Write(b)
	return err
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	path := filepath.Join(dir, "a.txt")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAll(t, f, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b.txt"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v, %d entries", err, len(ents))
	}
}

func TestInjectFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, N: 2, Mode: Fail})
	f, err := in.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAll(t, f, []byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := writeAll(t, f, []byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 = %v, want ErrInjected", err)
	}
	if err := writeAll(t, f, []byte("three")); err != nil {
		t.Fatalf("write 3 (after non-crash fault): %v", err)
	}
	if in.Fired() != 1 {
		t.Errorf("fired = %d", in.Fired())
	}
}

func TestInjectShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, N: 1, Mode: ShortWrite, Keep: 2})
	path := filepath.Join(dir, "w")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "ab" {
		t.Fatalf("on-disk bytes %q, want torn prefix \"ab\"", b)
	}
}

func TestInjectCrashDropsUnsyncedData(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, N: 3, Mode: CrashBefore})
	path := filepath.Join(dir, "w")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("durable|")) // write 1
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("cached|")) // write 2, never synced
	if err := writeAll(t, f, []byte("never")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 3 = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not crashed")
	}
	// Everything after the crash fails.
	if _, err := in.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash open = %v", err)
	}
	if _, err := in.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash readdir = %v", err)
	}
	// The reboot (a fresh FS) sees only the synced prefix.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "durable|" {
		t.Fatalf("surviving bytes %q, want only the synced prefix", b)
	}
}

func TestInjectFailFsync(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpSync, N: 1, Mode: Fail})
	path := filepath.Join(dir, "w")
	f, _ := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("data"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	// A failed fsync leaves the data in the cache: a crash now drops it.
	in.Crash()
	b, _ := os.ReadFile(path)
	if len(b) != 0 {
		t.Fatalf("unsynced bytes survived the crash: %q", b)
	}
}

func TestInjectCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpRename, N: 1, Mode: CrashAfter})
	path := filepath.Join(dir, "t")
	f, _ := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("v2"))
	f.Sync()
	f.Close()
	err := in.Rename(path, filepath.Join(dir, "final"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename = %v, want ErrCrashed", err)
	}
	// The rename itself happened before the crash.
	b, rerr := os.ReadFile(filepath.Join(dir, "final"))
	if rerr != nil || string(b) != "v2" {
		t.Fatalf("renamed file after crash: %q, %v", b, rerr)
	}
}

func TestInjectPathScopedFault(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Fault{Op: OpWrite, N: 1, Mode: Fail, Path: "wal."})
	other, _ := in.OpenFile(filepath.Join(dir, "snap.000001"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err := writeAll(t, other, []byte("x")); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	w, _ := in.OpenFile(filepath.Join(dir, "wal.000001"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err := writeAll(t, w, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path not faulted: %v", err)
	}
}

func TestInjectTruncateTracksSync(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{})
	path := filepath.Join(dir, "w")
	f, _ := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("abcdef"))
	f.Sync()
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	in.Crash()
	b, _ := os.ReadFile(path)
	if string(b) != "abc" {
		t.Fatalf("after truncate+crash: %q", b)
	}
}
