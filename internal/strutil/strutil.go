// Package strutil provides the string primitives K-Join and its baselines
// are built on: Levenshtein edit distance (plain, banded-with-threshold),
// normalized edit similarity (paper §2.1.1), a tokenizer, q-gram
// extraction, and the even-partition scheme used by the FastJoin baseline's
// segment signatures.
package strutil

import (
	"strings"
	"unicode"
)

// EditDistance returns the Levenshtein distance between a and b, operating
// on bytes (the datasets are ASCII). It uses a single rolling row, O(|a|·|b|)
// time and O(min) space.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev + cost
			if v := row[j] + 1; v < m {
				m = v
			}
			if v := row[j-1] + 1; v < m {
				m = v
			}
			row[j] = m
			prev = cur
		}
	}
	return row[len(b)]
}

// EditDistanceWithin returns the Levenshtein distance between a and b if it
// is at most k, and (k+1, false) otherwise. It computes only a diagonal
// band of width 2k+1, O(k·min(|a|,|b|)) time, which is what makes typo
// tolerance in K-Join+ cheap (the paper's φ matching, Eq. 2).
func EditDistanceWithin(a, b string, k int) (int, bool) {
	if k < 0 {
		return 0, a == b
	}
	la, lb := len(a), len(b)
	if la > lb {
		a, b, la, lb = b, a, lb, la
	}
	if lb-la > k {
		return k + 1, false
	}
	// row[j] = distance between a[:i] and b[:j], banded.
	const inf = 1 << 29
	row := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= k {
			row[j] = j
		} else {
			row[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > lb {
			hi = lb
		}
		prev := row[lo-1] // value for (i-1, lo-1)
		if lo == 1 {
			row[0] = i
			if i > k {
				row[0] = inf
			}
		}
		if lo-1 >= 1 {
			row[lo-1] = inf
		}
		best := inf
		for j := lo; j <= hi; j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev + cost
			if v := cur + 1; v < m {
				m = v
			}
			if v := row[j-1] + 1; v < m {
				m = v
			}
			row[j] = m
			prev = cur
			if m < best {
				best = m
			}
		}
		if best > k {
			return k + 1, false
		}
	}
	if row[lb] > k {
		return k + 1, false
	}
	return row[lb], true
}

// EditSim returns the normalized edit similarity of the paper (§2.1.1):
// 1 − ED(a,b)/max(|a|,|b|). Two empty strings have similarity 1.
func EditSim(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	return 1 - float64(EditDistance(a, b))/float64(max)
}

// EditSimAtLeast reports whether EditSim(a, b) >= phi and, if so, the
// similarity. It converts the similarity threshold into an edit-distance
// budget and uses the banded computation.
func EditSimAtLeast(a, b string, phi float64) (float64, bool) {
	if phi <= 0 {
		return EditSim(a, b), true
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1, true
	}
	// ED budget: the largest k with 1 - k/max >= phi. Computing
	// (1-phi)*max loses ulps (1-0.8 = 0.19999…), which can shrink the
	// band and reject pairs whose similarity equals phi exactly, so
	// correct the estimate against the definition EditSim evaluates.
	k := int(float64(max) * (1 - phi))
	for k+1 <= max && 1-float64(k+1)/float64(max) >= phi {
		k++
	}
	for k > 0 && 1-float64(k)/float64(max) < phi {
		k--
	}
	d, ok := EditDistanceWithin(a, b, k)
	if !ok {
		return 0, false
	}
	return 1 - float64(d)/float64(max), true
}

// Tokenize splits s into lowercase tokens on any non-alphanumeric rune.
// Empty tokens are dropped. This is the tokenization of paper §2.1 ("we
// model each object as a set of elements by tokenizing the object").
func Tokenize(s string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, strings.ToLower(s[start:end]))
			start = -1
		}
	}
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return out
}

// QGrams returns the set of q-grams of s as strings, with positional
// padding omitted. Strings shorter than q yield the string itself as a
// single gram so every token has at least one signature.
func QGrams(s string, q int) []string {
	if q <= 0 {
		q = 2
	}
	if len(s) <= q {
		return []string{s}
	}
	out := make([]string, 0, len(s)-q+1)
	for i := 0; i+q <= len(s); i++ {
		out = append(out, s[i:i+q])
	}
	return out
}

// Segment is one even-partition segment of a string, identified by its
// index and content. Two strings within edit distance k share at least one
// aligned segment when each is split into k+1 segments (pigeonhole); this
// is the Pass-Join / FastJoin segment signature substrate.
type Segment struct {
	Index int    // position of the segment in the partition
	Text  string // segment content
}

// Partition splits s into n contiguous segments of near-equal length
// (the first len(s) mod n segments are one byte longer). If n exceeds
// len(s), the trailing segments are empty.
func Partition(s string, n int) []Segment {
	if n <= 0 {
		n = 1
	}
	out := make([]Segment, n)
	base := len(s) / n
	extra := len(s) % n
	pos := 0
	for i := 0; i < n; i++ {
		l := base
		if i < extra {
			l++
		}
		out[i] = Segment{Index: i, Text: s[pos : pos+l]}
		pos += l
	}
	return out
}

// Abbreviate returns a crude abbreviation of token t: the token itself
// for short tokens, or its first five bytes otherwise ("Artificial" →
// "Artif", as in the paper's Pub example "Artif Intelligence" vs
// "Artificial Intelli"). Used by the dataset generator to inject the
// abbreviation errors the paper attributes to the Pub dataset.
func Abbreviate(t string) string {
	if len(t) <= 5 {
		return t
	}
	return t[:5]
}
