package strutil

import "testing"

// FuzzEditDistanceWithin cross-checks the banded computation against the
// full DP on arbitrary inputs.
func FuzzEditDistanceWithin(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "", 0)
	f.Add("a", "ab", 1)
	f.Add("pizzahut", "pizzahat", 2)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 64 || len(b) > 64 || k < 0 || k > 64 {
			return
		}
		full := EditDistance(a, b)
		d, ok := EditDistanceWithin(a, b, k)
		if full <= k {
			if !ok || d != full {
				t.Fatalf("EditDistanceWithin(%q, %q, %d) = (%d, %v), full %d", a, b, k, d, ok, full)
			}
		} else if ok {
			t.Fatalf("EditDistanceWithin(%q, %q, %d) accepted but full is %d", a, b, k, full)
		}
	})
}

// FuzzTokenize checks the tokenizer never panics and produces lowercase,
// non-empty tokens.
func FuzzTokenize(f *testing.F) {
	f.Add("Californian food at Fillmore st")
	f.Add("")
	f.Add("日本語 mixed ASCII-42")
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
		}
	})
}
