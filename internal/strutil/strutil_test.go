package strutil

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEditDistanceBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"PizzaHut", "PizzaHat", 1}, // paper §2.1.1 example
		{"abc", "abc", 0},
		{"abc", "cba", 2},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := EditDistance(c.b, c.a); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEditSimPaperExample(t *testing.T) {
	// "The edit distance of PizzaHut and PizzaHat is 1. Their edit
	// similarity is 7/8."
	if got := EditSim("PizzaHut", "PizzaHat"); got != 7.0/8 {
		t.Errorf("EditSim = %v, want 7/8", got)
	}
	if got := EditSim("", ""); got != 1 {
		t.Errorf("EditSim of empties = %v, want 1", got)
	}
}

func TestEditDistanceWithin(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		d    int
		ok   bool
	}{
		{"kitten", "sitting", 3, 3, true},
		{"kitten", "sitting", 2, 3, false},
		{"abc", "abc", 0, 0, true},
		{"abc", "abd", 0, 1, false},
		{"abcdef", "abcdefghij", 3, 4, false},
		{"abcdef", "abcdefgh", 2, 2, true},
		{"", "xyz", 3, 3, true},
		{"", "xyz", 2, 3, false},
	}
	for _, c := range cases {
		d, ok := EditDistanceWithin(c.a, c.b, c.k)
		if ok != c.ok || (ok && d != c.d) {
			t.Errorf("EditDistanceWithin(%q, %q, %d) = (%d, %v), want (%d, %v)", c.a, c.b, c.k, d, ok, c.d, c.ok)
		}
	}
}

// TestEditDistanceWithinAgreesWithFull is a property test: the banded
// computation agrees with the full DP whenever the distance is within k.
func TestEditDistanceWithinAgreesWithFull(t *testing.T) {
	alphabet := "abcd"
	gen := func(r *rand.Rand) string {
		n := r.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return sb.String()
	}
	f := func(seed int64, kk uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		k := int(kk % 6)
		full := EditDistance(a, b)
		d, ok := EditDistanceWithin(a, b, k)
		if full <= k {
			return ok && d == full
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEditSimAtLeast(t *testing.T) {
	if s, ok := EditSimAtLeast("PizzaHut", "PizzaHat", 0.8); !ok || s != 7.0/8 {
		t.Errorf("EditSimAtLeast = (%v, %v), want (7/8, true)", s, ok)
	}
	if _, ok := EditSimAtLeast("PizzaHut", "Brooklyn", 0.8); ok {
		t.Errorf("dissimilar strings should not pass")
	}
	if s, ok := EditSimAtLeast("", "", 0.9); !ok || s != 1 {
		t.Errorf("empty strings are identical: got (%v, %v)", s, ok)
	}
	if s, ok := EditSimAtLeast("ab", "ab", 0); !ok || s != 1 {
		t.Errorf("phi=0 accepts everything: got (%v, %v)", s, ok)
	}
}

// Property: EditSimAtLeast agrees with the direct definition.
func TestEditSimAtLeastProperty(t *testing.T) {
	alphabet := "abcde"
	gen := func(r *rand.Rand) string {
		n := r.Intn(10)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return sb.String()
	}
	f := func(seed int64, p uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		phi := float64(p%11) / 10
		want := EditSim(a, b)
		got, ok := EditSimAtLeast(a, b, phi)
		if want >= phi {
			return ok && got == want
		}
		return !ok || got == want // boundary: floor(k) may admit equal-sim pairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Californian food at Fillmore st", []string{"californian", "food", "at", "fillmore", "st"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"", nil},
		{"---", nil},
		{"a-b_c,d", []string{"a", "b", "c", "d"}},
		{"KFC@NY", []string{"kfc", "ny"}},
		{"42nd street", []string{"42nd", "street"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQGrams(t *testing.T) {
	if got := QGrams("abcd", 2); !reflect.DeepEqual(got, []string{"ab", "bc", "cd"}) {
		t.Errorf("QGrams(abcd,2) = %v", got)
	}
	if got := QGrams("ab", 3); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Errorf("QGrams short = %v", got)
	}
	if got := QGrams("abc", 0); !reflect.DeepEqual(got, []string{"ab", "bc"}) {
		t.Errorf("QGrams default q = %v", got)
	}
}

func TestPartition(t *testing.T) {
	segs := Partition("abcdefg", 3)
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %d", len(segs))
	}
	joined := ""
	for i, s := range segs {
		if s.Index != i {
			t.Errorf("segment %d has index %d", i, s.Index)
		}
		joined += s.Text
	}
	if joined != "abcdefg" {
		t.Errorf("segments do not cover input: %q", joined)
	}
	// Lengths differ by at most one.
	if len(segs[0].Text)-len(segs[2].Text) > 1 {
		t.Errorf("uneven partition: %v", segs)
	}
	// n > len(s): empty segments allowed, still n of them.
	segs = Partition("ab", 4)
	if len(segs) != 4 {
		t.Errorf("want 4 segments, got %d", len(segs))
	}
	// n <= 0 coerced to 1.
	segs = Partition("ab", 0)
	if len(segs) != 1 || segs[0].Text != "ab" {
		t.Errorf("Partition(ab, 0) = %v", segs)
	}
}

// Property: pigeonhole — if ED(a,b) <= k then partitions of b into k+1
// segments include at least one segment that occurs as a substring of a.
// (This is the weaker substring form used by segment filtering.)
func TestPartitionPigeonhole(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]byte, 8+r.Intn(8))
		for i := range base {
			base[i] = byte('a' + r.Intn(4))
		}
		a := string(base)
		// Apply up to k random edits.
		k := 1 + r.Intn(2)
		b := []byte(a)
		for e := 0; e < k && len(b) > 0; e++ {
			p := r.Intn(len(b))
			b[p] = byte('a' + r.Intn(4))
		}
		segs := Partition(string(b), k+1)
		for _, s := range segs {
			if s.Text != "" && strings.Contains(a, s.Text) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAbbreviate(t *testing.T) {
	if got := Abbreviate("Artificial"); got != "Artif" {
		t.Errorf("Abbreviate(Artificial) = %q", got)
	}
	if got := Abbreviate("ai"); got != "ai" {
		t.Errorf("Abbreviate(ai) = %q", got)
	}
	if got := Abbreviate("short"); got != "short" {
		t.Errorf("Abbreviate(short) = %q", got)
	}
}
