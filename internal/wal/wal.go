// Package wal implements the write-ahead log that makes acknowledged
// adds crash-durable: an append-only sequence of length-prefixed,
// CRC32C-checksummed records, each carrying a monotonic sequence
// number, fsync'd before the caller acknowledges the operation.
//
// The log lives in its own directory as numbered segment files
// (`wal.<first-seq>`). Recovery replays every intact record in order
// and truncates the log at the first torn or corrupt record — the state
// a crash mid-append legitimately leaves behind — instead of refusing
// to start. After a snapshot covering sequence S is durable, Compact
// seals the current segment and deletes segments whose records are all
// ≤ S, so the log stays proportional to the write traffic since the
// oldest retained snapshot.
//
// Concurrent appenders group-commit: records are serialized into the
// file under the log's mutex, and one fsync (by whichever appender
// reaches the sync mutex first) covers every record written before it,
// so followers observe their records durable without issuing their own
// fsync. On any write or fsync failure the log poisons itself — further
// appends fail fast — and rolls the file back to the last durable
// offset, keeping the invariant that no record an acknowledgment was
// refused for survives recovery.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kjoin/internal/fault"
)

// segPrefix heads every segment file name; the suffix is the first
// sequence number the segment holds, zero-padded so lexical order is
// numeric order.
const segPrefix = "wal."

func segName(first uint64) string { return fmt.Sprintf("%s%020d", segPrefix, first) }

func parseSegName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, segPrefix)
	if !ok || len(s) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Policy selects when appends are made durable.
type Policy uint8

const (
	// SyncAlways fsyncs (group-committed) before Append/Sync returns:
	// an acknowledged add survives any crash.
	SyncAlways Policy = iota
	// SyncNone never fsyncs; the OS flushes on its own schedule. Fast
	// and unsafe — a crash loses recent acknowledged adds.
	SyncNone
)

// Options configures a WAL.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy Policy
	// BatchWindow, when positive, makes a group-commit leader wait this
	// long before fsyncing so more concurrent appenders can ride the
	// same fsync. Higher throughput, BatchWindow of added ack latency.
	BatchWindow time.Duration
	// Logf, when set, receives repair notices (torn tails truncated,
	// segments dropped) during Open.
	Logf func(format string, args ...any)
}

// segment is one on-disk log file.
type segment struct {
	name  string
	first uint64 // first sequence number stored in the segment
}

// WAL is an open write-ahead log. Safe for concurrent use.
//
//kjoinlint:durable
type WAL struct {
	fs     fault.FS
	dir    string
	policy Policy
	batch  time.Duration

	//kjoinlint:lockorder rank=40
	mu        sync.Mutex
	f         fault.File // guarded by mu: current segment, open for append
	segs      []segment  // guarded by mu: all segments, oldest first
	nextSeq   uint64     // guarded by mu: sequence the next record gets
	written   int64      // guarded by mu: bytes in the current segment
	syncedOff int64      // guarded by mu: durable bytes of the current segment
	poisoned  error      // guarded by mu: first unrecoverable write/sync error
	buf       []byte     // guarded by mu: record encoding scratch

	// syncMu serializes fsyncs; holding it is group-commit leadership.
	//kjoinlint:lockorder rank=30
	syncMu sync.Mutex
	synced atomic.Uint64 // highest sequence known durable
}

// errStop aborts replay at a contiguity violation; Open converts it
// into a truncation point like any other corruption.
var errStop = errors.New("wal: sequence discontinuity")

// Open opens (creating if necessary) the log in dir, replays every
// intact record through replay in sequence order, repairs the log —
// truncating the torn tail at the first bad checksum, short record or
// sequence discontinuity, and dropping unreachable later segments — and
// returns the WAL positioned to append. replay may be nil; a non-nil
// replay error aborts Open (the state is semantically unusable, not
// merely torn).
func Open(fsys fault.FS, dir string, opt Options, replay func(seq uint64, op Op, tokens []string) error) (*WAL, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{name: e.Name(), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	var lastSeq uint64
	repaired := false
	for i := 0; i < len(segs); i++ {
		path := dir + "/" + segs[i].name
		data, err := readFileFS(fsys, path)
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		good, derr := DecodeAll(data, func(seq uint64, op Op, tokens []string) error {
			// Sequence 0 is reserved, and after the first record the log
			// must be contiguous; a violation is treated like any other
			// corruption — the log ends at the previous record.
			if seq == 0 || (lastSeq != 0 && seq != lastSeq+1) {
				return errStop
			}
			lastSeq = seq
			if replay != nil {
				if rerr := replay(seq, op, tokens); rerr != nil {
					return fmt.Errorf("wal: replaying seq %d: %w", seq, rerr)
				}
			}
			return nil
		})
		if derr != nil && !errors.Is(derr, errStop) {
			return nil, derr
		}
		torn := errors.Is(derr, errStop) || good < len(data)
		if !torn {
			continue
		}
		// Repair: everything from the bad offset on never happened.
		logf("wal: %s torn at byte %d (last good seq %d); truncating", segs[i].name, good, lastSeq)
		if err := fsys.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		for _, s := range segs[i+1:] {
			logf("wal: dropping unreachable segment %s", s.name)
			if err := fsys.Remove(dir + "/" + s.name); err != nil {
				return nil, fmt.Errorf("wal: remove %s: %w", s.name, err)
			}
		}
		segs = segs[:i+1]
		repaired = true
		break
	}
	if repaired {
		if err := fsys.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("wal: fsync dir after repair: %w", err)
		}
	}

	// The next sequence follows the last replayed record — or the current
	// segment's name when that is newer: after compaction the log can be
	// a single empty segment whose name (its first sequence) is the only
	// on-disk trace of how far numbering had advanced.
	next := lastSeq + 1
	if n := len(segs); n > 0 && segs[n-1].first > next {
		next = segs[n-1].first
	}
	w := &WAL{fs: fsys, dir: dir, policy: opt.Policy, batch: opt.BatchWindow, segs: segs, nextSeq: next}
	w.synced.Store(next - 1)
	if len(segs) == 0 {
		if err := w.createSegmentLocked(w.nextSeq); err != nil {
			return nil, err
		}
		if err := fsys.SyncDir(dir); err != nil {
			return nil, fmt.Errorf("wal: fsync dir: %w", err)
		}
	} else {
		last := segs[len(segs)-1]
		f, err := fsys.OpenFile(dir+"/"+last.name, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open %s for append: %w", last.name, err)
		}
		st, err := fsys.Stat(dir + "/" + last.name)
		if err != nil {
			_ = f.Close() // open already failed overall; the stat error is the one to report
			return nil, fmt.Errorf("wal: stat %s: %w", last.name, err)
		}
		w.f = f
		w.written = st.Size()
		w.syncedOff = st.Size() // on-disk bytes at open are what survived; treat as durable
	}
	return w, nil
}

func readFileFS(fsys fault.FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	//kjoinlint:ignore syncerr read-only open; a close failure cannot lose data
	defer f.Close()
	return io.ReadAll(f)
}

// createSegmentLocked creates and opens a fresh segment whose first
// record will be seq. Caller holds mu (or the WAL is not yet shared).
func (w *WAL) createSegmentLocked(seq uint64) error {
	name := segName(seq)
	f, err := w.fs.OpenFile(w.dir+"/"+name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	w.f = f
	w.segs = append(w.segs, segment{name: name, first: seq})
	w.written = 0
	w.syncedOff = 0
	return nil
}

// Append serializes an add record for tokens into the log and returns
// its sequence number. The record is ordered (its sequence reflects the
// order Append calls entered the log) but not yet durable — call
// Sync(seq) before acknowledging. On a write failure the log rolls back
// to its last durable offset and poisons itself: the failed record and
// everything after it will not survive, and later Appends fail fast.
//
//kjoinlint:ackorder append
func (w *WAL) Append(tokens []string) (uint64, error) {
	return w.appendOp(OpAdd, tokens)
}

// AppendSeal serializes a seal record — a memtable seal boundary of the
// segmented index engine — into the log and returns its sequence
// number. Like Append, the record is ordered but not yet durable; the
// triggering add's Sync covers it (the seal always immediately precedes
// the add that crossed the threshold).
func (w *WAL) AppendSeal() (uint64, error) {
	return w.appendOp(OpSeal, nil)
}

// AppendCoord serializes a coordinator control-plane record — an opaque
// typed field list owned by the cluster layer — into the log and returns
// its sequence number. Like Append, the record is ordered but not yet
// durable; call Sync(seq) before acting on it.
//
//kjoinlint:ackorder append
func (w *WAL) AppendCoord(fields []string) (uint64, error) {
	return w.appendOp(OpCoord, fields)
}

func (w *WAL) appendOp(op Op, tokens []string) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned != nil {
		return 0, w.poisoned
	}
	seq := w.nextSeq
	w.buf = appendRecordOp(w.buf[:0], seq, op, tokens)
	n, err := w.f.Write(w.buf)
	if err != nil {
		w.poisonLocked(fmt.Errorf("wal: append seq %d: %w", seq, err))
		return 0, w.poisoned
	}
	w.written += int64(n)
	w.nextSeq++
	return seq, nil
}

// Sync blocks until every record up to and including seq is durable
// (under SyncAlways) and returns the first error that prevents it.
// Concurrent callers group-commit: one fsync covers all records written
// before it, and callers whose records are already covered return
// without touching the disk.
//
//kjoinlint:ackorder barrier
func (w *WAL) Sync(seq uint64) error {
	if w.synced.Load() >= seq {
		return nil // already covered by an earlier group commit
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= seq {
		return nil
	}
	if w.batch > 0 {
		time.Sleep(w.batch) // gather followers onto this fsync
	}
	w.mu.Lock()
	if w.poisoned != nil {
		err := w.poisoned
		w.mu.Unlock()
		return err
	}
	f := w.f
	target := w.nextSeq - 1
	targetOff := w.written
	w.mu.Unlock()
	if w.policy == SyncNone {
		w.synced.Store(target)
		return nil
	}
	// fsync outside mu: appends keep flowing into the file (they will be
	// covered by the next leader). Rotation cannot swap f out from under
	// us — Compact takes syncMu first.
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		w.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
		err = w.poisoned
		w.mu.Unlock()
		return err
	}
	w.mu.Lock()
	if targetOff > w.syncedOff {
		w.syncedOff = targetOff
	}
	w.mu.Unlock()
	w.synced.Store(target)
	return nil
}

// AppendSync is Append followed by Sync on the returned sequence: the
// record is durable (per the policy) when it returns.
func (w *WAL) AppendSync(tokens []string) (uint64, error) {
	seq, err := w.Append(tokens)
	if err != nil {
		return 0, err
	}
	return seq, w.Sync(seq)
}

// poisonLocked records the first unrecoverable error and rolls the
// current segment back to its last durable offset, so records that were
// never acknowledged cannot reappear after recovery. Caller holds mu.
func (w *WAL) poisonLocked(err error) {
	if w.poisoned != nil {
		return
	}
	w.poisoned = err
	if w.f != nil && w.written > w.syncedOff {
		if terr := w.f.Truncate(w.syncedOff); terr == nil {
			w.written = w.syncedOff
		}
		// If the truncate fails too, recovery's torn-tail scan and the
		// sequence filter still keep replay consistent; the records are
		// valid bytes but the operator was told the writes failed.
	}
}

// Err returns the error that poisoned the log, or nil while it is
// healthy.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.poisoned
}

// LastSeq returns the sequence of the most recently appended record (0
// when the log is empty).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// DurableSeq returns the highest sequence known durable.
func (w *WAL) DurableSeq() uint64 { return w.synced.Load() }

// Segments returns how many segment files the log currently spans.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// Compact tells the log that a snapshot covering every record with
// sequence ≤ covered is durable: the current segment is sealed (fsync'd
// and replaced by a fresh one) if it holds anything, and every segment
// whose records are all ≤ covered is deleted. Called only after the
// snapshot write is fully durable — never before.
func (w *WAL) Compact(covered uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned != nil {
		return w.poisoned
	}
	// Seal the current segment so rotation never loses cached bytes.
	if w.written > 0 {
		if w.policy != SyncNone && w.written > w.syncedOff {
			if err := w.f.Sync(); err != nil {
				w.poisonLocked(fmt.Errorf("wal: fsync before rotation: %w", err))
				return w.poisoned
			}
			w.syncedOff = w.written
			w.synced.Store(w.nextSeq - 1)
		}
		if err := w.f.Close(); err != nil {
			w.poisonLocked(fmt.Errorf("wal: close sealed segment: %w", err))
			return w.poisoned
		}
		if err := w.createSegmentLocked(w.nextSeq); err != nil {
			w.poisonLocked(err)
			return w.poisoned
		}
		// Make the fresh segment's directory entry durable before any
		// covered segment disappears: its name anchors the sequence
		// numbering, and a crash that persisted the removals but not this
		// entry would otherwise reopen an empty directory and restart
		// numbering from 1, which recovery refuses.
		if err := w.fs.SyncDir(w.dir); err != nil {
			return fmt.Errorf("wal: fsync dir after rotation: %w", err)
		}
	}
	// A segment is fully covered when the next segment starts at or
	// before covered+1 — every record it holds is then ≤ covered.
	kept := w.segs[:0]
	for i, s := range w.segs {
		if i+1 < len(w.segs) && w.segs[i+1].first <= covered+1 {
			if err := w.fs.Remove(w.dir + "/" + s.name); err != nil {
				return fmt.Errorf("wal: remove covered segment %s: %w", s.name, err)
			}
			continue
		}
		kept = append(kept, s)
	}
	w.segs = append([]segment(nil), kept...)
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("wal: fsync dir after compaction: %w", err)
	}
	return nil
}

// Close syncs and closes the log. The WAL is unusable afterwards.
func (w *WAL) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.poisoned
	}
	var err error
	if w.poisoned == nil && w.policy != SyncNone && w.written > w.syncedOff {
		if err = w.f.Sync(); err == nil {
			w.syncedOff = w.written
			w.synced.Store(w.nextSeq - 1)
		}
	}
	if cerr := w.f.Close(); err == nil && w.poisoned == nil {
		err = cerr
	}
	w.f = nil
	return err
}
