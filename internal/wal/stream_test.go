package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"kjoin/internal/fault"
)

// streamOpen opens a WAL in a fresh temp dir.
func streamOpen(t *testing.T, opt Options) *WAL {
	t.Helper()
	w, err := Open(fault.OS{}, t.TempDir(), opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// decodeFrames decodes every frame in b and returns the sequences seen,
// failing the test on any torn or corrupt frame.
func decodeFrames(t *testing.T, b []byte) []uint64 {
	t.Helper()
	var seqs []uint64
	dec := NewStreamDecoder(bytes.NewReader(b))
	for {
		seq, _, _, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return seqs
		}
		if err != nil {
			t.Fatalf("torn or corrupt frame after %d records: %v", len(seqs), err)
		}
		seqs = append(seqs, seq)
	}
}

func TestReadDurableServesAckedRecords(t *testing.T) {
	w := streamOpen(t, Options{})
	for i := 0; i < 10; i++ {
		if _, err := w.AppendSync([]string{fmt.Sprintf("tok%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	frames, next, durable, err := w.ReadDurable(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if durable != 10 || next != 11 {
		t.Fatalf("durable=%d next=%d, want 10 and 11", durable, next)
	}
	seqs := decodeFrames(t, frames)
	if len(seqs) != 10 || seqs[0] != 1 || seqs[9] != 10 {
		t.Fatalf("decoded seqs %v, want 1..10", seqs)
	}
	// Resume mid-log.
	frames, next, _, err = w.ReadDurable(7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeFrames(t, frames); len(got) != 4 || got[0] != 7 {
		t.Fatalf("resume from 7 decoded %v", got)
	}
	if next != 11 {
		t.Fatalf("resume next=%d, want 11", next)
	}
	// Past the end: empty, resume point unchanged.
	frames, next, _, err = w.ReadDurable(11, 1<<20)
	if err != nil || len(frames) != 0 || next != 11 {
		t.Fatalf("past-end read: frames=%d next=%d err=%v", len(frames), next, err)
	}
}

// TestReadDurableOmitsUnsyncedTail proves a follower can never be
// shipped a record no acknowledgment could have been issued for: bytes
// appended but not yet fsync'd are invisible to the stream.
func TestReadDurableOmitsUnsyncedTail(t *testing.T) {
	w := streamOpen(t, Options{Policy: SyncAlways})
	if _, err := w.AppendSync([]string{"acked"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]string{"not", "yet", "durable"}); err != nil {
		t.Fatal(err)
	}
	frames, next, durable, err := w.ReadDurable(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if durable != 1 || next != 2 {
		t.Fatalf("durable=%d next=%d, want 1 and 2", durable, next)
	}
	if got := decodeFrames(t, frames); len(got) != 1 || got[0] != 1 {
		t.Fatalf("stream leaked unsynced records: %v", got)
	}
	if err := w.Sync(2); err != nil {
		t.Fatal(err)
	}
	frames, _, _, err = w.ReadDurable(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeFrames(t, frames); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after sync, stream should serve seq 2: %v", got)
	}
}

func TestReadDurableByteCapStopsAtFrameBoundary(t *testing.T) {
	w := streamOpen(t, Options{})
	for i := 0; i < 20; i++ {
		if _, err := w.AppendSync([]string{"aaaaaaaaaaaaaaaa"}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	from := uint64(1)
	for {
		frames, next, durable, err := w.ReadDurable(from, 64)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, decodeFrames(t, frames)...)
		if next == from && from > durable {
			break
		}
		if next == from {
			t.Fatalf("no progress at seq %d", from)
		}
		from = next
	}
	if len(got) != 20 {
		t.Fatalf("capped reads decoded %d records, want 20", len(got))
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, s)
		}
	}
}

func TestReadDurableCompactionFloor(t *testing.T) {
	w := streamOpen(t, Options{})
	for i := 0; i < 6; i++ {
		if _, err := w.AppendSync([]string{fmt.Sprintf("tok%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A snapshot covering the whole segment lets Compact delete it: the
	// floor jumps past every record it held.
	if err := w.Compact(6); err != nil {
		t.Fatal(err)
	}
	if w.Floor() != 7 {
		t.Fatalf("floor after full compaction is %d, want 7", w.Floor())
	}
	_, _, _, err := w.ReadDurable(2, 1<<20)
	var ce *CompactedError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CompactedError for pre-floor read, got %v", err)
	}
	if ce.From != 2 || ce.Floor != 7 {
		t.Fatalf("CompactedError %+v, want From=2 Floor=7", ce)
	}
	for i := 6; i < 9; i++ {
		if _, err := w.AppendSync([]string{fmt.Sprintf("tok%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// At or after the floor the read succeeds.
	frames, _, _, err := w.ReadDurable(w.Floor(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	seqs := decodeFrames(t, frames)
	if len(seqs) == 0 || seqs[0] != w.Floor() {
		t.Fatalf("read from floor decoded %v", seqs)
	}
}

// TestCompactRaceTailingReader is the satellite regression for WAL
// compaction racing a tailing stream reader: the reader must either
// complete its read from the old segments or get the typed
// compaction-floor error — never a torn or corrupt frame, which
// decodeFrames would fail on.
func TestCompactRaceTailingReader(t *testing.T) {
	w := streamOpen(t, Options{})
	const total = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var compacted, served int
	wg.Add(1)
	go func() {
		defer wg.Done()
		from := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			frames, next, _, err := w.ReadDurable(from, 256)
			if err != nil {
				var ce *CompactedError
				if !errors.As(err, &ce) {
					t.Errorf("tailing reader got non-floor error: %v", err)
					return
				}
				compacted++
				from = ce.Floor // resync point a real follower gets from a snapshot
				continue
			}
			seqs := decodeFramesErr(frames)
			if seqs == nil && len(frames) > 0 {
				t.Errorf("tailing reader got torn frames at seq %d", from)
				return
			}
			for i, s := range seqs {
				if s != from+uint64(i) {
					t.Errorf("discontiguous stream: got seq %d at position %d from %d", s, i, from)
					return
				}
			}
			served += len(seqs)
			from = next
		}
	}()
	for i := 1; i <= total; i++ {
		if _, err := w.AppendSync([]string{fmt.Sprintf("tok%d", i)}); err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			// A snapshot covering everything so far lets compaction delete
			// every sealed segment out from under the reader.
			if err := w.Compact(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	t.Logf("tailing reader served %d records, hit the compaction floor %d time(s)", served, compacted)
}

// decodeFramesErr decodes frames, returning nil on any bad frame.
func decodeFramesErr(b []byte) []uint64 {
	seqs := []uint64{}
	dec := NewStreamDecoder(bytes.NewReader(b))
	for {
		seq, _, _, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return seqs
		}
		if err != nil {
			return nil
		}
		seqs = append(seqs, seq)
	}
}

func TestStreamDecoderTornAndCorruptFrames(t *testing.T) {
	var clean []byte
	clean = AppendRecord(clean, 1, []string{"burgerking", "mountainview"})
	clean = AppendRecord(clean, 2, []string{"kfc"})
	one := len(AppendRecord(nil, 1, []string{"burgerking", "mountainview"}))

	// Torn mid-frame: the first record decodes, the partial second is
	// ErrUnexpectedEOF — never a partially applied record.
	dec := NewStreamDecoder(bytes.NewReader(clean[:one+5]))
	if seq, _, _, err := dec.Next(); err != nil || seq != 1 {
		t.Fatalf("first frame: seq=%d err=%v", seq, err)
	}
	if _, _, _, err := dec.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: want ErrUnexpectedEOF, got %v", err)
	}

	// Bit flip inside the second record: ErrBadFrame.
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-2] ^= 0x40
	dec = NewStreamDecoder(bytes.NewReader(flipped))
	if _, _, _, err := dec.Next(); err != nil {
		t.Fatalf("first frame of flipped stream: %v", err)
	}
	if _, _, _, err := dec.Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt frame: want ErrBadFrame, got %v", err)
	}

	// Clean end.
	dec = NewStreamDecoder(bytes.NewReader(clean))
	for i := 0; i < 2; i++ {
		if _, _, _, err := dec.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := dec.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}
}
