package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kjoin/internal/fault"
)

type rec struct {
	seq    uint64
	tokens []string
}

func replayAll(t *testing.T, dir string) []rec {
	t.Helper()
	var got []rec
	w, err := Open(fault.OS{}, dir, Options{}, func(seq uint64, op Op, tokens []string) error {
		if op != OpAdd {
			return nil // seal boundaries carry no object
		}
		got = append(got, rec{seq, append([]string(nil), tokens...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Open for replay: %v", err)
	}
	w.Close()
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	objs := [][]string{{"a", "b"}, {"c"}, {"d", "e", "f"}, {}, {"tab\ttoken", "newline\ntoken", "ünïcode"}}
	for i, o := range objs {
		seq, err := w.AppendSync(o)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if w.LastSeq() != uint64(len(objs)) || w.DurableSeq() != uint64(len(objs)) {
		t.Fatalf("last=%d durable=%d", w.LastSeq(), w.DurableSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(objs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(objs))
	}
	for i, r := range got {
		if r.seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.seq)
		}
		if len(r.tokens) != len(objs[i]) {
			t.Fatalf("record %d: %d tokens, want %d", i, len(r.tokens), len(objs[i]))
		}
		for j := range r.tokens {
			if r.tokens[j] != objs[i][j] {
				t.Errorf("record %d token %d: %q != %q", i, j, r.tokens[j], objs[i][j])
			}
		}
	}
}

// TestCoordRecordsRoundTrip: coordinator records share the sequence
// space with the other ops, survive replay in order with their op and
// field list intact, and may carry any fields — including empty strings
// — since the cluster layer owns their meaning.
func TestCoordRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]string{
		{"assign-intent", "0", "1", "burger", "king"},
		{"assign-done", "0", "1", "0"},
		{"reshard-begin", "2", "", "0:1:2"},
	}
	for i, fields := range recs {
		seq, err := w.AppendCoord(fields)
		if err != nil || seq != uint64(i+1) {
			t.Fatalf("coord record %d: seq=%d err=%v", i, seq, err)
		}
		if err := w.Sync(seq); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	var got [][]string
	w2, err := Open(fault.OS{}, dir, Options{}, func(seq uint64, op Op, tokens []string) error {
		if op != OpCoord {
			t.Fatalf("seq %d: op %d, want OpCoord", seq, op)
		}
		got = append(got, tokens)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if len(got[i]) != len(recs[i]) {
			t.Fatalf("record %d: %d fields, want %d", i, len(got[i]), len(recs[i]))
		}
		for j := range recs[i] {
			if got[i][j] != recs[i][j] {
				t.Errorf("record %d field %d: %q != %q", i, j, got[i][j], recs[i][j])
			}
		}
	}
}

// TestSealRecordsRoundTrip: seal records share the sequence space with
// adds, survive replay in order with their op intact, and carry no
// tokens.
func TestSealRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w.AppendSync([]string{"a"}); err != nil || seq != 1 {
		t.Fatalf("add: seq=%d err=%v", seq, err)
	}
	seq, err := w.AppendSeal()
	if err != nil || seq != 2 {
		t.Fatalf("seal: seq=%d err=%v", seq, err)
	}
	if _, err := w.AppendSync([]string{"b"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	type opRec struct {
		seq uint64
		op  Op
		n   int
	}
	var got []opRec
	w2, err := Open(fault.OS{}, dir, Options{}, func(seq uint64, op Op, tokens []string) error {
		got = append(got, opRec{seq, op, len(tokens)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	want := []opRec{{1, OpAdd, 1}, {2, OpSeal, 0}, {3, OpAdd, 1}}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The stream side decodes the same frames with the op intact.
	frames, _, _, err := w2.ReadDurable(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewStreamDecoder(bytes.NewReader(frames))
	for i := 0; ; i++ {
		seq, op, tokens, derr := dec.Next()
		if errors.Is(derr, io.EOF) {
			if i != len(want) {
				t.Fatalf("stream decoded %d frames, want %d", i, len(want))
			}
			break
		}
		if derr != nil {
			t.Fatal(derr)
		}
		if (opRec{seq, op, len(tokens)}) != want[i] {
			t.Fatalf("frame %d = {%d %d %d}, want %+v", i, seq, op, len(tokens), want[i])
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(fault.OS{}, dir, Options{}, nil)
	w.AppendSync([]string{"one"})
	w.Close()
	w2, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.AppendSync([]string{"two"})
	if err != nil || seq != 2 {
		t.Fatalf("seq after reopen = %d, %v; want 2", seq, err)
	}
	w2.Close()
	if got := replayAll(t, dir); len(got) != 2 || got[1].seq != 2 {
		t.Fatalf("replay after reopen: %+v", got)
	}
}

// segPath returns the single segment file, failing if there are many.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) != 1 {
		t.Fatalf("want 1 segment, have %d", len(paths))
	}
	return paths[0]
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(fault.OS{}, dir, Options{}, nil)
	w.AppendSync([]string{"keep", "me"})
	w.AppendSync([]string{"also", "keep"})
	w.Close()
	path := segPath(t, dir)
	clean, _ := os.ReadFile(path)

	// A torn append: the first bytes of a record that never finished.
	torn := AppendRecord(nil, 3, []string{"torn", "record"})
	for cut := 1; cut < len(torn); cut += 3 {
		if err := os.WriteFile(path, append(append([]byte(nil), clean...), torn[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir)
		if len(got) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(got))
		}
		b, _ := os.ReadFile(path)
		if !bytes.Equal(b, clean) {
			t.Fatalf("cut %d: torn tail not truncated (len %d, want %d)", cut, len(b), len(clean))
		}
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(fault.OS{}, dir, Options{}, nil)
	w.AppendSync([]string{"first"})
	w.AppendSync([]string{"second"})
	w.Close()
	path := segPath(t, dir)
	clean, _ := os.ReadFile(path)
	firstLen := len(AppendRecord(nil, 1, []string{"first"}))

	// Flip one bit inside the second record's payload.
	mut := append([]byte(nil), clean...)
	mut[firstLen+headerSize] ^= 0x40
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].tokens[0] != "first" {
		t.Fatalf("replay after bit flip: %+v", got)
	}
	b, _ := os.ReadFile(path)
	if len(b) != firstLen {
		t.Fatalf("file not truncated at corruption: %d bytes, want %d", len(b), firstLen)
	}
	// Appends continue cleanly after the repair, reusing seq 2.
	w2, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.AppendSync([]string{"second-again"})
	if err != nil || seq != 2 {
		t.Fatalf("append after repair: seq %d, %v", seq, err)
	}
	w2.Close()
}

func TestCompactRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(fault.OS{}, dir, Options{}, nil)
	for i := 0; i < 5; i++ {
		w.AppendSync([]string{fmt.Sprintf("obj%d", i)})
	}
	// Snapshot covers seq 5: everything is compactable.
	if err := w.Compact(5); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 1 {
		t.Fatalf("segments after full compaction = %d", w.Segments())
	}
	// New records land in the fresh segment; replay sees only them.
	w.AppendSync([]string{"after"})
	w.Close()
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].seq != 6 || got[0].tokens[0] != "after" {
		t.Fatalf("replay after compaction: %+v", got)
	}
}

func TestCompactKeepsUncoveredSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(fault.OS{}, dir, Options{}, nil)
	w.AppendSync([]string{"covered"})
	w.Compact(1) // rotate: segment 2 becomes current
	w.AppendSync([]string{"not-covered"})
	w.Compact(1) // seq 2 not covered: its segment must survive
	w.Close()
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].seq != 2 || got[0].tokens[0] != "not-covered" {
		t.Fatalf("replay: %+v", got)
	}
}

// TestCompactRotationDurableBeforeRemoval: Compact must fsync the
// fresh segment's directory entry before any covered segment is
// removed. The fresh name anchors sequence numbering; if the unlinks
// could become durable first, a crash in between would reopen a log
// that restarts at seq 1, which recovery refuses.
func TestCompactRotationDurableBeforeRemoval(t *testing.T) {
	dir := t.TempDir()
	// SyncDir #1 fires in Open (fresh directory); #2 is Compact's
	// post-rotation anchor.
	inj := fault.NewInjector(fault.OS{},
		fault.Fault{Op: fault.OpSyncDir, N: 2, Mode: fault.Fail})
	w, err := Open(inj, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.AppendSync([]string{"tok"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(3); err == nil {
		t.Fatal("compact succeeded despite the rotation dir-fsync failing")
	}
	segs, err := filepath.Glob(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatal("covered segment removed before the fresh segment's entry was durable")
	}
	w.Close()
	// The aborted compaction lost nothing: every record still replays.
	if got := replayAll(t, dir); len(got) != 3 {
		t.Fatalf("replayed %d records after aborted compaction, want 3", len(got))
	}
}

func TestAppendFailurePoisonsAndRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS{}, fault.Fault{Op: fault.OpWrite, N: 2, Mode: fault.Fail})
	w, err := Open(inj, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSync([]string{"acked"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSync([]string{"failed"}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append 2 = %v, want injected failure", err)
	}
	// Poisoned: everything after fails fast.
	if _, err := w.Append([]string{"more"}); err == nil {
		t.Fatal("poisoned WAL accepted an append")
	}
	// Recovery sees exactly the acknowledged record.
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].tokens[0] != "acked" {
		t.Fatalf("replay after poison: %+v", got)
	}
}

func TestSyncFailureRollsBackUnacked(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS{}, fault.Fault{Op: fault.OpSync, N: 2, Mode: fault.Fail})
	w, err := Open(inj, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSync([]string{"acked"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSync([]string{"unacked"}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sync = %v, want injected failure", err)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].tokens[0] != "acked" {
		t.Fatalf("replay after failed fsync: %+v", got)
	}
}

func TestConcurrentAppendersGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = w.AppendSync([]string{fmt.Sprintf("obj-%d", i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", i, err)
		}
	}
	if w.DurableSeq() != n {
		t.Fatalf("durable = %d, want %d", w.DurableSeq(), n)
	}
	w.Close()
	got := replayAll(t, dir)
	if len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	seen := make(map[string]bool)
	for i, r := range got {
		if r.seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.seq)
		}
		seen[r.tokens[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("replay lost records: %d distinct", len(seen))
	}
}

func TestReplayErrorAbortsOpen(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(fault.OS{}, dir, Options{}, nil)
	w.AppendSync([]string{"x"})
	w.Close()
	boom := errors.New("apply failed")
	_, err := Open(fault.OS{}, dir, Options{}, func(uint64, Op, []string) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Open = %v, want the replay error", err)
	}
}

func TestSyncNonePolicy(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(fault.OS{}, dir, Options{Policy: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendSync([]string{"fast"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if got := replayAll(t, dir); len(got) != 1 {
		t.Fatalf("replay: %+v", got)
	}
}

// TestReopenAfterFullCompaction: Compact can leave the log as a single
// empty segment. Reopening must resume numbering from the segment name,
// not restart at 1 and collide with sequences the snapshot already
// covers.
func TestReopenAfterFullCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(fault.OS{}, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.AppendSync([]string{"tok"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(fault.OS{}, dir, Options{}, func(uint64, Op, []string) error {
		t.Error("compacted log replayed a record")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq after reopen = %d, want 5", got)
	}
	seq, err := w2.AppendSync([]string{"next"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("next append got seq %d, want 6", seq)
	}
}
