package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the replication surface of the WAL: a primary reads
// durable records back out of the log to ship them to followers, and a
// follower decodes the shipped frames one at a time. The wire format is
// exactly the on-disk record format — length-prefixed, CRC32C-checksummed
// frames — so a truncated stream tears the same way a crashed log does
// and the same checksums reject it.

// CompactedError is returned by ReadDurable when the requested sequence
// predates the compaction floor: the records were deleted under a
// snapshot that covers them, and the caller must fall back to fetching a
// snapshot instead of silently starting from a later offset.
type CompactedError struct {
	// From is the sequence the caller asked for.
	From uint64
	// Floor is the lowest sequence the log can still serve.
	Floor uint64
}

func (e *CompactedError) Error() string {
	return fmt.Sprintf("wal: records from seq %d were compacted away (floor is seq %d); resync from a snapshot", e.From, e.Floor)
}

// Floor returns the lowest sequence number still present in the log's
// segments — requests below it get a CompactedError. On an empty log it
// equals the next sequence to be assigned.
func (w *WAL) Floor() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.floorLocked()
}

// floorLocked is Floor. Caller holds mu.
func (w *WAL) floorLocked() uint64 {
	if len(w.segs) == 0 {
		return w.nextSeq
	}
	return w.segs[0].first
}

// ReadDurable returns the raw encoded frames of every durable record
// with sequence in [from, DurableSeq], capped at roughly maxBytes
// (always at whole-frame boundaries), plus the sequence to resume from
// and the durable horizon observed. Records appended but not yet
// fsync'd are never returned — a follower can only ever apply what an
// acknowledgment could have been issued for. When from predates the
// compaction floor it returns a *CompactedError. Safe for concurrent
// use with appenders and with Compact: a segment deleted mid-read
// surfaces as the same *CompactedError, never as torn bytes.
func (w *WAL) ReadDurable(from uint64, maxBytes int) (frames []byte, next uint64, durable uint64, err error) {
	if from == 0 {
		from = 1
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	w.mu.Lock()
	durable = w.synced.Load()
	segs := append([]segment(nil), w.segs...)
	var curName string
	var curCap int64
	if n := len(segs); n > 0 {
		curName = segs[n-1].name
		curCap = w.syncedOff
		if w.policy == SyncNone {
			// Under SyncNone every written byte counts as durable — that is
			// the policy's (weaker) contract.
			curCap = w.written
		}
	}
	w.mu.Unlock()
	next = from
	if from > durable {
		return nil, from, durable, nil
	}
	if len(segs) == 0 || from < segs[0].first {
		return nil, from, durable, &CompactedError{From: from, Floor: w.Floor()}
	}
	// Skip segments that end before from: a segment is dead to this read
	// when the next one starts at or before from.
	start := 0
	for start+1 < len(segs) && segs[start+1].first <= from {
		start++
	}
	for _, s := range segs[start:] {
		if s.first > durable {
			break
		}
		data, rerr := readFileFS(w.fs, w.dir+"/"+s.name)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				// Compact raced us and deleted the segment. The caller's
				// records are gone for the same reason a lower floor would
				// report: a snapshot covers them.
				return nil, from, durable, &CompactedError{From: from, Floor: w.Floor()}
			}
			return nil, from, durable, fmt.Errorf("wal: read segment %s: %w", s.name, rerr)
		}
		if s.name == curName && int64(len(data)) > curCap {
			// The active segment keeps growing under concurrent appends;
			// only the bytes durable at the snapshot above may be served.
			data = data[:curCap]
		}
		full := true
		scanFrames(data, func(frame []byte, seq uint64) bool {
			if seq < next {
				return true // before from, or duplicated at a segment seam
			}
			if seq > durable || seq != next || len(frames) >= maxBytes {
				full = false
				return false
			}
			frames = append(frames, frame...)
			next = seq + 1
			return true
		})
		if !full {
			break
		}
	}
	return frames, next, durable, nil
}

// scanFrames walks the intact frames in b, calling fn with each frame's
// raw bytes and sequence number, stopping at the first torn frame or
// when fn returns false.
func scanFrames(b []byte, fn func(frame []byte, seq uint64) bool) {
	off := 0
	for {
		if len(b)-off < headerSize {
			return
		}
		length := binary.LittleEndian.Uint32(b[off:])
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if length > maxRecordBytes || int(length) > len(b)-off-headerSize {
			return
		}
		payload := b[off+headerSize : off+headerSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != crc || len(payload) < 8 {
			return
		}
		if !fn(b[off:off+headerSize+int(length)], binary.LittleEndian.Uint64(payload)) {
			return
		}
		off += headerSize + int(length)
	}
}

// ErrBadFrame marks a replication frame that is structurally broken —
// an impossible length, a checksum mismatch, or a payload that does not
// parse. A follower must drop the connection and resume from its last
// applied sequence; the offending frame is never applied.
var ErrBadFrame = errors.New("wal: bad stream frame")

// StreamDecoder incrementally decodes framed WAL records from a
// replication stream. Next returns io.EOF at a clean frame boundary,
// io.ErrUnexpectedEOF when the stream ends mid-frame (the torn record a
// dropped connection leaves behind), and an error wrapping ErrBadFrame
// for a frame that is present but corrupt.
type StreamDecoder struct {
	r   io.Reader
	hdr [headerSize]byte
	buf []byte
}

// NewStreamDecoder returns a decoder reading frames from r.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	return &StreamDecoder{r: r}
}

// Next decodes one frame.
func (d *StreamDecoder) Next() (seq uint64, op Op, tokens []string, err error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, nil, io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	length := binary.LittleEndian.Uint32(d.hdr[:])
	crc := binary.LittleEndian.Uint32(d.hdr[4:])
	if length > maxRecordBytes {
		return 0, 0, nil, fmt.Errorf("%w: frame length %d exceeds %d-byte cap", ErrBadFrame, length, maxRecordBytes)
	}
	if cap(d.buf) < int(length) {
		d.buf = make([]byte, length)
	}
	payload := d.buf[:length]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, nil, io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, 0, nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	seq, op, tokens, derr := decodePayload(payload)
	if derr != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFrame, derr)
	}
	return seq, op, tokens, nil
}
