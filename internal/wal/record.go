package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record layout (all integers little-endian):
//
//	length  uint32  // byte length of payload
//	crc     uint32  // CRC32C (Castagnoli) of payload
//	payload:
//	  seq     uint64   // monotonic sequence number, 1-based
//	  op      uint8    // OpAdd or OpSeal
//	  ntok    uvarint  // token count (0 for OpSeal)
//	  ntok × { len uvarint, bytes }
//
// A record is written with a single Write call, so a crash tears it
// into a strict prefix: either the header is incomplete, the payload is
// shorter than length says, or the CRC does not match. Replay treats
// the first such record as the end of the log.

const (
	headerSize = 8
	// maxRecordBytes bounds a record so a corrupt length field cannot
	// drive a giant allocation. It comfortably exceeds the server's
	// token caps (10000 tokens × 1024 bytes).
	maxRecordBytes = 64 << 20
)

// Op is a record's operation type.
type Op uint8

const (
	// OpAdd records one indexed object (its tokens).
	OpAdd Op = 1
	// OpSeal records a memtable seal boundary of the segmented index
	// engine: recovery reproduces the exact pre-crash segment layout by
	// sealing at the same points. Seal records carry no tokens.
	OpSeal Op = 2
	// OpCoord records one cluster control-plane state change (a global-id
	// assignment, a route-table change, or per-object reshard progress).
	// The token slice carries the typed fields; the cluster layer owns
	// their meaning — to the log they are opaque strings, framed and
	// checksummed like any other record.
	OpCoord Op = 3
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt marks a structurally broken record during decoding; it is
// internal — DecodeAll converts it into a truncation point.
var errCorrupt = errors.New("wal: corrupt record")

// AppendRecord appends the encoded add record for (seq, tokens) to buf
// and returns the extended slice.
func AppendRecord(buf []byte, seq uint64, tokens []string) []byte {
	return appendRecordOp(buf, seq, OpAdd, tokens)
}

// AppendSealRecord appends the encoded seal record for seq to buf and
// returns the extended slice.
func AppendSealRecord(buf []byte, seq uint64) []byte {
	return appendRecordOp(buf, seq, OpSeal, nil)
}

// AppendCoordRecord appends the encoded coordinator record for (seq,
// fields) to buf and returns the extended slice.
func AppendCoordRecord(buf []byte, seq uint64, fields []string) []byte {
	return appendRecordOp(buf, seq, OpCoord, fields)
}

func appendRecordOp(buf []byte, seq uint64, op Op, tokens []string) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	p := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, byte(op))
	buf = binary.AppendUvarint(buf, uint64(len(tokens)))
	for _, t := range tokens {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
	}
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodePayload parses a checksum-verified payload.
func decodePayload(payload []byte) (seq uint64, op Op, tokens []string, err error) {
	if len(payload) < 9 {
		return 0, 0, nil, errCorrupt
	}
	seq = binary.LittleEndian.Uint64(payload)
	op = Op(payload[8])
	if op != OpAdd && op != OpSeal && op != OpCoord {
		return 0, 0, nil, fmt.Errorf("%w: unknown op %d", errCorrupt, payload[8])
	}
	rest := payload[9:]
	n, used := binary.Uvarint(rest)
	if used <= 0 || n > uint64(len(rest)) {
		return 0, 0, nil, errCorrupt
	}
	if op == OpSeal && n != 0 {
		return 0, 0, nil, fmt.Errorf("%w: seal record carries tokens", errCorrupt)
	}
	rest = rest[used:]
	tokens = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(rest)
		if used <= 0 || l > uint64(len(rest)-used) {
			return 0, 0, nil, errCorrupt
		}
		tokens = append(tokens, string(rest[used:used+int(l)]))
		rest = rest[used+int(l):]
	}
	if len(rest) != 0 {
		return 0, 0, nil, errCorrupt // trailing garbage inside a checksummed payload
	}
	return seq, op, tokens, nil
}

// DecodeAll walks the records in b, calling fn for every intact one,
// and returns the byte offset of the first torn or corrupt record (or
// len(b) when the log is clean). A record is intact when its header is
// complete, its full payload is present, and the payload matches its
// CRC32C; anything else — including a CRC that verifies but a payload
// that does not parse — terminates the walk at that record's offset.
// DecodeAll never panics on arbitrary input. fn's error aborts the walk
// and is returned as-is.
func DecodeAll(b []byte, fn func(seq uint64, op Op, tokens []string) error) (good int, err error) {
	off := 0
	for {
		if len(b)-off < headerSize {
			return off, nil
		}
		length := binary.LittleEndian.Uint32(b[off:])
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if length > maxRecordBytes || int(length) > len(b)-off-headerSize {
			return off, nil
		}
		payload := b[off+headerSize : off+headerSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, nil
		}
		seq, op, tokens, derr := decodePayload(payload)
		if derr != nil {
			return off, nil
		}
		if fn != nil {
			if err := fn(seq, op, tokens); err != nil {
				return off, err
			}
		}
		off += headerSize + int(length)
	}
}
