package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the record decoder and checks
// the replay contract: it never panics, it never yields a record whose
// bytes do not round-trip through the encoder (i.e. whose checksum or
// structure is bad), and the reported good-prefix offset is exactly the
// sum of the yielded records' encodings.
func FuzzWALReplay(f *testing.F) {
	// A clean two-record log.
	clean := AppendRecord(nil, 1, []string{"burgerking", "mountainview"})
	clean = AppendRecord(clean, 2, []string{"kfc"})
	f.Add(clean)
	// Torn tail: a third record cut mid-payload.
	torn := AppendRecord(append([]byte(nil), clean...), 3, []string{"torn", "tail"})
	f.Add(torn[:len(clean)+7])
	f.Add(torn[:len(torn)-3])
	// Bit flip inside the second record.
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	// Header garbage and empty input.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{})
	// A record claiming a huge token count with no bytes behind it.
	f.Add(AppendRecord(nil, 1, nil)[:headerSize])

	f.Fuzz(func(t *testing.T, b []byte) {
		pos := 0
		good, err := DecodeAll(b, func(seq uint64, op Op, tokens []string) error {
			enc := appendRecordOp(nil, seq, op, tokens)
			if pos+len(enc) > len(b) || !bytes.Equal(b[pos:pos+len(enc)], enc) {
				t.Fatalf("yielded record at %d does not round-trip: seq %d, %d tokens", pos, seq, len(tokens))
			}
			pos += len(enc)
			return nil
		})
		if err != nil {
			t.Fatalf("DecodeAll returned an error despite nil-returning fn: %v", err)
		}
		if good != pos {
			t.Fatalf("good prefix %d != decoded bytes %d", good, pos)
		}
		if good > len(b) {
			t.Fatalf("good prefix %d beyond input %d", good, len(b))
		}
	})
}

// FuzzWALStream feeds arbitrary bytes to the replication frame decoder
// and checks the follower-side contract: it never panics, every record
// it yields round-trips through the encoder byte-for-byte at the
// position it was read from, and the first error cleanly terminates the
// stream (io.EOF only at a frame boundary).
func FuzzWALStream(f *testing.F) {
	// A clean two-record stream.
	clean := AppendRecord(nil, 1, []string{"burgerking", "mountainview"})
	clean = AppendRecord(clean, 2, []string{"kfc"})
	f.Add(clean)
	// Torn mid-frame (dropped connection).
	torn := AppendRecord(append([]byte(nil), clean...), 3, []string{"torn", "tail"})
	f.Add(torn[:len(clean)+5])
	f.Add(torn[:len(torn)-2])
	// Bit flip inside a frame.
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-3] ^= 0x04
	f.Add(flipped)
	// A header claiming a giant frame, garbage, and empty input.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		dec := NewStreamDecoder(bytes.NewReader(b))
		pos := 0
		for {
			seq, op, tokens, err := dec.Next()
			if err != nil {
				if errors.Is(err, io.EOF) && pos != len(b) {
					t.Fatalf("clean EOF at %d with %d bytes left", pos, len(b)-pos)
				}
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			enc := appendRecordOp(nil, seq, op, tokens)
			if pos+len(enc) > len(b) || !bytes.Equal(b[pos:pos+len(enc)], enc) {
				t.Fatalf("frame at %d does not round-trip: seq %d, %d tokens", pos, seq, len(tokens))
			}
			pos += len(enc)
		}
	})
}
