package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the record decoder and checks
// the replay contract: it never panics, it never yields a record whose
// bytes do not round-trip through the encoder (i.e. whose checksum or
// structure is bad), and the reported good-prefix offset is exactly the
// sum of the yielded records' encodings.
func FuzzWALReplay(f *testing.F) {
	// A clean two-record log.
	clean := AppendRecord(nil, 1, []string{"burgerking", "mountainview"})
	clean = AppendRecord(clean, 2, []string{"kfc"})
	f.Add(clean)
	// Torn tail: a third record cut mid-payload.
	torn := AppendRecord(append([]byte(nil), clean...), 3, []string{"torn", "tail"})
	f.Add(torn[:len(clean)+7])
	f.Add(torn[:len(torn)-3])
	// Bit flip inside the second record.
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	// Header garbage and empty input.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{})
	// A record claiming a huge token count with no bytes behind it.
	f.Add(AppendRecord(nil, 1, nil)[:headerSize])

	f.Fuzz(func(t *testing.T, b []byte) {
		pos := 0
		good, err := DecodeAll(b, func(seq uint64, tokens []string) error {
			enc := AppendRecord(nil, seq, tokens)
			if pos+len(enc) > len(b) || !bytes.Equal(b[pos:pos+len(enc)], enc) {
				t.Fatalf("yielded record at %d does not round-trip: seq %d, %d tokens", pos, seq, len(tokens))
			}
			pos += len(enc)
			return nil
		})
		if err != nil {
			t.Fatalf("DecodeAll returned an error despite nil-returning fn: %v", err)
		}
		if good != pos {
			t.Fatalf("good prefix %d != decoded bytes %d", good, pos)
		}
		if good > len(b) {
			t.Fatalf("good prefix %d beyond input %d", good, len(b))
		}
	})
}
