// Package mathx holds small numeric helpers shared across K-Join:
// robust ceilings for threshold computations where floating-point noise
// around exact rational values (e.g. 0.8/(1−0.8) = 4.000000000000001)
// would otherwise shift ⌈·⌉ by one and break the paper's bounds.
package mathx

import "math"

// Eps is the slack used by CeilInt; it is far larger than the rounding
// error of the few multiplications/divisions in threshold formulas and
// far smaller than the 1/n gaps between distinct attainable values.
const Eps = 1e-9

// CeilInt returns ⌈x⌉ computed robustly: values within Eps above an
// integer are treated as that integer.
func CeilInt(x float64) int {
	return int(math.Ceil(x - Eps))
}

// GE reports a >= b with Eps tolerance (a is allowed to be Eps short).
func GE(a, b float64) bool { return a >= b-Eps }

// LT reports a < b with Eps tolerance.
func LT(a, b float64) bool { return a < b-Eps }

// Eq reports a == b with Eps tolerance. Use it for semantic similarity
// and threshold comparisons; note it is not transitive, so it must not
// order a sort (use Cmp there).
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Cmp compares a and b exactly, returning -1, 0 or +1. It is the one
// sanctioned exact float comparison: sort comparators need a strict
// weak order, which epsilon comparisons cannot provide, and tie-breaks
// on equal similarity scores must be bit-deterministic for the join's
// result ordering to be reproducible.
func Cmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
