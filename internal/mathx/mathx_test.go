package mathx

import "testing"

func TestCeilInt(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0.8 / (1 - 0.8), 4}, // the motivating case: 4.000000000000001
		{2.3333, 3},
		{4.0, 4},
		{4.00001, 5}, // above Eps: a genuine fraction
		{-1.2, -1},
		{0, 0},
		{0.6 * 3, 2}, // 1.7999999999999998 → ⌈1.8⌉ = 2
	}
	for _, c := range cases {
		if got := CeilInt(c.x); got != c.want {
			t.Errorf("CeilInt(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestEq(t *testing.T) {
	// Runtime arithmetic, not constants: Go folds 0.1+0.2 exactly at
	// compile time, which would make this test vacuous.
	x, y := 0.1, 0.2
	if !Eq(x+y, 0.3) {
		t.Error("Eq should tolerate float noise")
	}
	if Eq(0.3, 0.31) {
		t.Error("Eq(0.3, 0.31) should be false")
	}
}

func TestCmp(t *testing.T) {
	x, y := 0.1, 0.2
	cases := []struct {
		a, b float64
		want int
	}{
		{0.1, 0.2, -1},
		{0.2, 0.1, 1},
		{0.5, 0.5, 0},
		// Cmp is exact, not epsilon-based: it must order values that Eq
		// considers equal, so sort comparators built on it stay transitive.
		{0.3, x + y, -1},
	}
	for _, c := range cases {
		if got := Cmp(c.a, c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGELT(t *testing.T) {
	if !GE(0.7999999999999999, 0.8) {
		t.Error("GE should tolerate float noise")
	}
	if GE(0.79, 0.8) {
		t.Error("GE(0.79, 0.8) should be false")
	}
	if !LT(0.79, 0.8) {
		t.Error("LT(0.79, 0.8) should be true")
	}
	if LT(0.7999999999999999, 0.8) {
		t.Error("LT should tolerate float noise")
	}
}
