// Package paperdata builds the running example of the K-Join paper:
// the Figure 1 knowledge hierarchy and the nine objects of Table 1.
// It is shared by tests and by the quickstart example, so that the code
// can be checked against every worked number in the paper.
package paperdata

import "kjoin/internal/hierarchy"

// Fig1 returns the paper's Figure 1 hierarchy and a name→node map.
//
//	Root ── Food ── WesternFood ── Fastfood ── {BurgerKing, KFC}
//	 │                         └── Pizza ──── {PizzaHut, Dominos}
//	 └─ Location ── US ── CA ── SanFrancisco ── MountainView ── GoogleHeadquarters
//	                  │     └── PaloAlto
//	                  └── NY ── NewYork ── {Manhattan, Brooklyn}
func Fig1() (*hierarchy.Hierarchy, map[string]hierarchy.NodeID) {
	h := hierarchy.New("Root")
	m := map[string]hierarchy.NodeID{"Root": h.Root()}
	add := func(parent, name string) {
		m[name] = h.Add(m[parent], name)
	}
	add("Root", "Food")
	add("Root", "Location")
	add("Food", "WesternFood")
	add("WesternFood", "Fastfood")
	add("WesternFood", "Pizza")
	add("Fastfood", "BurgerKing")
	add("Fastfood", "KFC")
	add("Pizza", "PizzaHut")
	add("Pizza", "Dominos")
	add("Location", "US")
	add("US", "CA")
	add("US", "NY")
	add("CA", "SanFrancisco")
	add("CA", "PaloAlto")
	add("SanFrancisco", "MountainView")
	add("MountainView", "GoogleHeadquarters")
	add("NY", "NewYork")
	add("NewYork", "Manhattan")
	add("NewYork", "Brooklyn")
	return h, m
}

// Table1 returns the Table 1 objects S1..S9 (index 0 is S1) as element
// token slices.
func Table1() [][]string {
	return [][]string{
		{"BurgerKing", "MountainView"},
		{"Pizza", "PaloAlto", "Brooklyn"},
		{"Fastfood", "GoogleHeadquarters"},
		{"PizzaHut", "KFC", "CA"},
		{"Pizza", "GoogleHeadquarters"},
		{"Fastfood", "Manhattan"},
		{"Brooklyn", "Food"},
		{"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan", "Brooklyn"},
		{"Fastfood", "PizzaHut", "BurgerKing", "PaloAlto", "MountainView", "NewYork"},
	}
}
