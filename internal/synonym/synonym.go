// Package synonym implements the synonym dictionary used by K-Join+
// (paper Eq. 2: φ(e, e') = 1 when e and e' are synonyms) and by the
// Synonym baseline of Lu et al. that the paper compares against.
//
// Synonyms form disjoint groups; every token in a group shares a
// canonical representative (the first token the group was created with).
package synonym

import (
	"sort"
	"strings"
)

// Dict is a set of disjoint synonym groups. The zero value is an empty,
// usable dictionary.
type Dict struct {
	canon  map[string]string   // token -> canonical representative
	groups map[string][]string // canonical -> members (including itself)
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{canon: make(map[string]string), groups: make(map[string][]string)}
}

// Add records that all the given tokens are synonyms of one another.
// Tokens are lowercased. If any token already belongs to a group, the
// groups are merged (the earliest canonical wins). Empty tokens are
// ignored.
func (d *Dict) Add(tokens ...string) {
	if d.canon == nil {
		d.canon = make(map[string]string)
		d.groups = make(map[string][]string)
	}
	var rep string
	for _, t := range tokens {
		t = strings.ToLower(t)
		if t == "" {
			continue
		}
		if c, ok := d.canon[t]; ok {
			rep = c
			break
		}
	}
	for _, t := range tokens {
		t = strings.ToLower(t)
		if t == "" {
			continue
		}
		if rep == "" {
			rep = t
		}
		if c, ok := d.canon[t]; ok {
			if c == rep {
				continue
			}
			// Merge group c into rep.
			for _, m := range d.groups[c] {
				d.canon[m] = rep
				d.groups[rep] = append(d.groups[rep], m)
			}
			delete(d.groups, c)
			continue
		}
		d.canon[t] = rep
		d.groups[rep] = append(d.groups[rep], t)
	}
}

// Canonical returns the canonical representative of token (lowercased),
// or the token itself if it belongs to no group.
func (d *Dict) Canonical(token string) string {
	t := strings.ToLower(token)
	if d == nil || d.canon == nil {
		return t
	}
	if c, ok := d.canon[t]; ok {
		return c
	}
	return t
}

// Same reports whether a and b are synonyms (or equal after lowercasing).
func (d *Dict) Same(a, b string) bool {
	return d.Canonical(a) == d.Canonical(b)
}

// Expand returns all synonyms of token including itself. The returned
// slice must not be modified.
func (d *Dict) Expand(token string) []string {
	t := strings.ToLower(token)
	if d == nil || d.canon == nil {
		return []string{t}
	}
	if c, ok := d.canon[t]; ok {
		return d.groups[c]
	}
	return []string{t}
}

// Groups returns all synonym groups, each sorted, ordered by their first
// member. The result is freshly allocated.
func (d *Dict) Groups() [][]string {
	if d == nil || len(d.groups) == 0 {
		return nil
	}
	out := make([][]string, 0, len(d.groups))
	for _, members := range d.groups {
		g := append([]string(nil), members...)
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Len returns the number of synonym groups.
func (d *Dict) Len() int {
	if d == nil {
		return 0
	}
	return len(d.groups)
}
