package synonym

import (
	"reflect"
	"sort"
	"testing"
)

func TestBasicGroups(t *testing.T) {
	d := New()
	d.Add("st", "street")
	d.Add("dr", "drive")
	if !d.Same("st", "street") {
		t.Error("st/street should be synonyms")
	}
	if d.Same("st", "dr") {
		t.Error("st/dr must not be synonyms")
	}
	if got := d.Canonical("street"); got != "st" {
		t.Errorf("Canonical(street) = %q, want st", got)
	}
	if got := d.Canonical("unknown"); got != "unknown" {
		t.Errorf("Canonical(unknown) = %q", got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestCaseInsensitive(t *testing.T) {
	d := New()
	d.Add("American", "USA")
	if !d.Same("american", "usa") {
		t.Error("lowercased lookup should work")
	}
	if !d.Same("AMERICAN", "UsA") {
		t.Error("mixed case lookup should work")
	}
}

func TestMerge(t *testing.T) {
	d := New()
	d.Add("a", "b")
	d.Add("c", "d")
	d.Add("b", "c") // merges the two groups
	if !d.Same("a", "d") {
		t.Error("merged groups should be transitive")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1 after merge", d.Len())
	}
	ex := d.Expand("a")
	sorted := append([]string(nil), ex...)
	sort.Strings(sorted)
	if !reflect.DeepEqual(sorted, []string{"a", "b", "c", "d"}) {
		t.Errorf("Expand(a) = %v", sorted)
	}
}

func TestExpandUnknown(t *testing.T) {
	d := New()
	if got := d.Expand("solo"); !reflect.DeepEqual(got, []string{"solo"}) {
		t.Errorf("Expand(solo) = %v", got)
	}
}

func TestNilAndZeroValue(t *testing.T) {
	var d *Dict
	if d.Canonical("x") != "x" || d.Len() != 0 || !d.Same("x", "x") {
		t.Error("nil dict should behave as empty")
	}
	var z Dict
	z.Add("a", "b")
	if !z.Same("a", "b") {
		t.Error("zero-value dict should be usable after Add")
	}
}

func TestEmptyTokensIgnored(t *testing.T) {
	d := New()
	d.Add("", "x", "")
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
	if !d.Same("x", "x") {
		t.Error("x should be its own synonym")
	}
}

func TestIdempotentAdd(t *testing.T) {
	d := New()
	d.Add("a", "b")
	d.Add("a", "b")
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
	if got := len(d.Expand("a")); got != 2 {
		t.Errorf("Expand(a) has %d members, want 2", got)
	}
}
