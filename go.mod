module kjoin

go 1.22
