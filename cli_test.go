package kjoin_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the command-line tools and drives the full
// pipeline: generate a dataset with kjoin-gen, join it with kjoin, and
// check the output shape. Skipped with -short (it shells out to the Go
// toolchain).
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	gen := build("kjoin-gen")
	join := build("kjoin")

	prefix := filepath.Join(dir, "res")
	if out, err := exec.Command(gen, "-kind", "res", "-out", prefix).CombinedOutput(); err != nil {
		t.Fatalf("kjoin-gen: %v\n%s", err, out)
	}
	for _, suffix := range []string{"-hierarchy.txt", "-records.txt", "-truth.txt", "-synonyms.txt"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Fatalf("missing output %s: %v", suffix, err)
		}
	}

	var stdout, stderr bytes.Buffer
	cmd := exec.Command(join,
		"-hierarchy", prefix+"-hierarchy.txt",
		"-input", prefix+"-records.txt",
		"-synonyms", prefix+"-synonyms.txt",
		"-delta", "0.5", "-tau", "0.6", "-plus")
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("kjoin: %v\n%s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("expected hundreds of duplicate pairs, got %d lines", len(lines))
	}
	for _, l := range lines[:5] {
		fields := strings.Split(l, "\t")
		if len(fields) != 3 {
			t.Fatalf("bad output line %q", l)
		}
	}
	if !strings.Contains(stderr.String(), "candidates=") {
		t.Errorf("stats summary missing: %q", stderr.String())
	}

	// Unknown flags and missing files fail loudly.
	if err := exec.Command(join, "-hierarchy", "/nonexistent", "-input", "/nonexistent").Run(); err == nil {
		t.Error("kjoin with missing files should fail")
	}
	if err := exec.Command(join).Run(); err == nil {
		t.Error("kjoin without required flags should fail")
	}
}
