// Restaurant entity resolution: the paper's Res experiment (§7.2).
// Generates the Res corpus — restaurants described by name, street,
// street kind, city and food category, where duplicates differ through
// synonyms ("st" vs "street") and knowledge-hierarchy substitutions
// ("Californian food" vs "American food") — and compares plain K-Join
// against K-Join+ (synonyms + typo-tolerant multi-node matching).
package main

import (
	"fmt"
	"log"

	"kjoin"
	"kjoin/datasets"
)

func main() {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	res := datasets.GenRes(hr, datasets.DefaultRes())
	fmt.Printf("Res corpus: %d restaurants, %d true duplicate pairs\n",
		len(res.Records), len(res.Truth))

	const delta, tau = 0.5, 0.6 // the thresholds of the paper's Table 4

	measure := func(name string, opt kjoin.Options) {
		pairs, _, err := kjoin.SelfJoin(res.H, res.Records, opt)
		if err != nil {
			log.Fatal(err)
		}
		keys := make([][2]int, len(pairs))
		for i, p := range pairs {
			keys[i] = [2]int{p.X, p.Y}
		}
		q := datasets.Measure(keys, res.Truth)
		fmt.Printf("%-8s precision %.1f%%  recall %.1f%%  F1 %.3f  (%d pairs)\n",
			name, q.Precision()*100, q.Recall()*100, q.F1(), len(pairs))
	}

	opt := kjoin.Defaults(delta, tau)
	measure("K-Join", opt)

	plus := opt
	plus.Plus = true
	plus.Synonyms = res.Aliases
	measure("K-Join+", plus)

	// One resolved example: a duplicate pair found only through the
	// hierarchy or synonym rules.
	pairs, _, err := kjoin.SelfJoin(res.H, res.Records, plus)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		if res.Truth[[2]int{p.X, p.Y}] && res.Records[p.X][2] != res.Records[p.Y][2] {
			fmt.Printf("resolved via synonym/hierarchy:\n  %v\n  %v\n",
				res.Records[p.X], res.Records[p.Y])
			break
		}
	}
}
