// Clustering: the paper's introduction motivates grouping similar
// objects ("Yelp wants to classify similar restaurants together").
// This example generates a Tweet-style collection, finds the most
// similar pairs with the top-k join, then builds similarity clusters
// with a threshold join and reports the cluster-size distribution.
package main

import (
	"flag"
	"fmt"
	"log"

	"kjoin"
	"kjoin/datasets"
)

func main() {
	var (
		n     = flag.Int("n", 3000, "number of records")
		delta = flag.Float64("delta", 0.8, "element threshold δ")
		tau   = flag.Float64("tau", 0.85, "object threshold τ")
		topk  = flag.Int("k", 5, "top-k pairs to print")
	)
	flag.Parse()

	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.TweetConfig(*n))

	// The k most similar pairs in the collection.
	top, _, err := kjoin.TopKSelfJoin(hr.H, c.Records, *topk, kjoin.Defaults(*delta, 0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d most similar pairs:\n", *topk)
	for _, p := range top {
		fmt.Printf("  %.3f  %v ~ %v\n", p.Sim, c.Records[p.X], c.Records[p.Y])
	}

	// Threshold join → connected-component clusters.
	pairs, _, err := kjoin.SelfJoin(hr.H, c.Records, kjoin.Defaults(*delta, *tau))
	if err != nil {
		log.Fatal(err)
	}
	clusters := kjoin.Cluster(len(c.Records), pairs)
	sizes := map[int]int{}
	biggest := 0
	for i, cl := range clusters {
		sizes[len(cl)]++
		if len(cl) > len(clusters[biggest]) {
			biggest = i
		}
	}
	fmt.Printf("\n%d records → %d clusters (from %d similar pairs)\n",
		len(c.Records), len(clusters), len(pairs))
	for s := 1; s <= 8; s++ {
		if sizes[s] > 0 {
			fmt.Printf("  clusters of size %d: %d\n", s, sizes[s])
		}
	}
	if len(clusters[biggest]) > 1 {
		fmt.Printf("largest cluster (%d members), first three:\n", len(clusters[biggest]))
		for i, m := range clusters[biggest] {
			if i >= 3 {
				break
			}
			fmt.Printf("  %v\n", c.Records[m])
		}
	}
}
