// Quickstart: the paper's running example. Builds the Figure 1 knowledge
// hierarchy, joins the nine objects of Table 1 with δ=0.7 and τ=0.6, and
// prints the single answer pair ⟨S1, S3⟩ with SIMδ = 19/29 ≈ 0.655,
// exactly as worked through in §2.2 of the paper.
package main

import (
	"fmt"
	"log"

	"kjoin"
)

func main() {
	// Figure 1: a small POI knowledge hierarchy.
	h := kjoin.NewHierarchy("Root")
	node := map[string]kjoin.NodeID{"Root": h.Root()}
	add := func(parent, name string) {
		node[name] = h.Add(node[parent], name)
	}
	add("Root", "Food")
	add("Food", "WesternFood")
	add("WesternFood", "Fastfood")
	add("WesternFood", "Pizza")
	add("Fastfood", "BurgerKing")
	add("Fastfood", "KFC")
	add("Pizza", "PizzaHut")
	add("Pizza", "Dominos")
	add("Root", "Location")
	add("Location", "US")
	add("US", "CA")
	add("US", "NY")
	add("CA", "SanFrancisco")
	add("CA", "PaloAlto")
	add("SanFrancisco", "MountainView")
	add("MountainView", "GoogleHeadquarters")
	add("NY", "NewYork")
	add("NewYork", "Manhattan")
	add("NewYork", "Brooklyn")

	// Table 1: nine objects, each a set of elements.
	objects := [][]string{
		{"BurgerKing", "MountainView"},                                                // S1
		{"Pizza", "PaloAlto", "Brooklyn"},                                             // S2
		{"Fastfood", "GoogleHeadquarters"},                                            // S3
		{"PizzaHut", "KFC", "CA"},                                                     // S4
		{"Pizza", "GoogleHeadquarters"},                                               // S5
		{"Fastfood", "Manhattan"},                                                     // S6
		{"Brooklyn", "Food"},                                                          // S7
		{"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan", "Brooklyn"},          // S8
		{"Fastfood", "PizzaHut", "BurgerKing", "PaloAlto", "MountainView", "NewYork"}, // S9
	}

	// δ = 0.7, τ = 0.6 — the thresholds of the paper's running example.
	opt := kjoin.Defaults(0.7, 0.6)
	pairs, stats, err := kjoin.SelfJoin(h, objects, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("candidates after filtering: %d (of %d total pairs)\n",
		stats.Candidates, len(objects)*(len(objects)-1)/2)
	for _, p := range pairs {
		fmt.Printf("S%d ~ S%d  SIM = %.4f\n", p.X+1, p.Y+1, p.Sim)
	}

	// Scoring one pair of objects directly. The singleton objects
	// {BurgerKing} and {KFC} have element similarity 3/4 (their LCA
	// Fastfood is at depth 3, both elements at depth 4 — Definition 1),
	// giving object-level Jaccard (3/4) / (2 − 3/4) = 0.6.
	s, err := kjoin.Similarity(h, []string{"BurgerKing"}, []string{"KFC"}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIM({BurgerKing}, {KFC}) = %.2f\n", s)
}
