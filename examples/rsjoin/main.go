// R-S join (§6.1) with an alternative set metric (§6.3): joins two
// different collections — a "catalog" of canonical restaurant records
// and a "feed" of noisy crawled records — under Dice similarity and the
// Wu & Palmer element metric (§6.2), finding which feed entries match
// which catalog entries.
package main

import (
	"fmt"
	"log"

	"kjoin"
	"kjoin/datasets"
)

func main() {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	res := datasets.GenRes(hr, datasets.DefaultRes())

	// Catalog: the first 500 records; feed: the rest (which contains
	// mutated duplicates of catalog entries).
	catalog := res.Records[:500]
	feed := res.Records[500:]

	opt := kjoin.Defaults(0.6, 0.6)
	opt.Set = kjoin.Dice
	opt.Metric = kjoin.WuPalmer
	opt.Plus = true
	opt.Synonyms = res.Aliases

	pairs, stats, err := kjoin.Join(res.H, catalog, feed, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog=%d feed=%d candidates=%d matches=%d\n",
		len(catalog), len(feed), stats.Candidates, len(pairs))

	shown := 0
	for _, p := range pairs {
		// p.X indexes the catalog, p.Y the feed.
		if res.Truth[[2]int{p.X, p.Y + 500}] && shown < 3 {
			fmt.Printf("feed %v\n  matches catalog %v (Dice %.3f)\n",
				feed[p.Y], catalog[p.X], p.Sim)
			shown++
		}
	}

	// Direct pair scoring through the public API.
	s, err := kjoin.Similarity(res.H,
		[]string{"californian", "food", "fillmore", "st"},
		[]string{"american", "food", "fillmore", "street"}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIM(californian food @ fillmore st, american food @ fillmore street) = %.3f\n", s)
}
