// Streaming deduplication: the online form of K-Join. POIs arrive one
// at a time (a crawler feed); each is checked against everything seen
// before as it is indexed. The index is snapshotted to disk and restored
// — the restart path of a long-running deduplication service — and then
// queried without inserting (knowledge-aware similarity search).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kjoin"
	"kjoin/datasets"
)

func main() {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	feed := datasets.GenRecords(hr, datasets.POIConfig(2000))

	opt := kjoin.Defaults(0.8, 0.85)
	ix, err := kjoin.NewIndexer(hr.H, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the feed; report duplicates as they arrive.
	dups := 0
	for i, rec := range feed.Records {
		pairs, err := ix.Add(rec)
		if err != nil {
			log.Fatal(err)
		}
		if len(pairs) > 0 && dups < 3 {
			fmt.Printf("record %d duplicates record %d (sim %.3f)\n",
				i, pairs[0].X, pairs[0].Sim)
		}
		dups += len(pairs)
	}
	st := ix.Stats()
	fmt.Printf("streamed %d records: %d duplicate pairs, %d candidates checked\n",
		ix.Len(), dups, st.Candidates)

	// Snapshot and restore (the restart path).
	path := filepath.Join(os.TempDir(), "kjoin-stream.snap")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.WriteSnapshot(f); err != nil {
		log.Fatal(err)
	}
	// A failed close on a just-written snapshot is a failed write: the
	// kernel may have refused the final flush.
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := kjoin.LoadIndexer(hr.H, opt, f)
	_ = f.Close() // read-only; nothing written that a close could lose
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d records from snapshot\n", restored.Len())

	// Similarity search against the restored index.
	query := feed.Records[0]
	matches, err := restored.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v matches %d indexed records\n", query, len(matches))
	for i, m := range matches {
		if i >= 3 {
			break
		}
		fmt.Printf("  record %d (sim %.3f)\n", m.Index, m.Sim)
	}
}
