// POI deduplication: the paper's motivating application (§1). Generates
// a synthetic POI collection over a knowledge hierarchy shaped like the
// paper's Factual crawl (Table 2/3), runs a knowledge-aware self join
// with deep weighted prefixes and adaptive verification, and reports how
// many of the injected near-duplicate pairs were recovered.
package main

import (
	"flag"
	"fmt"
	"log"

	"kjoin"
	"kjoin/datasets"
)

func main() {
	var (
		n     = flag.Int("n", 10000, "number of POIs")
		delta = flag.Float64("delta", 0.8, "element threshold δ")
		tau   = flag.Float64("tau", 0.8, "object threshold τ")
	)
	flag.Parse()

	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	poi := datasets.GenRecords(hr, datasets.POIConfig(*n))
	stats := datasets.Stats(hr, poi.Records)
	fmt.Printf("POIs: %d records, avg %d tokens, avg element depth %d\n",
		stats.Size, stats.AvgLen, stats.AvgDep)

	opt := kjoin.Defaults(*delta, *tau)
	pairs, jstats, err := kjoin.SelfJoin(hr.H, poi.Records, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidates: %d, results: %d, preprocess %v, probe %v\n",
		jstats.Candidates, len(pairs), jstats.Preprocess, jstats.Probe)
	fmt.Printf("pruning: count=%d weighted=%d ub-rejected=%d lb-accepted=%d\n",
		jstats.Verify.CountPruned, jstats.Verify.WeightedPruned,
		jstats.Verify.UBRejected, jstats.Verify.LBAccepted)

	keys := make([][2]int, len(pairs))
	for i, p := range pairs {
		keys[i] = [2]int{p.X, p.Y}
	}
	q := datasets.Measure(keys, poi.Truth)
	fmt.Printf("against injected duplicates: precision %.1f%%, recall %.1f%%, F1 %.3f\n",
		q.Precision()*100, q.Recall()*100, q.F1())

	// Show a few matches.
	for i, p := range pairs {
		if i >= 3 {
			break
		}
		fmt.Printf("  %v ~ %v (sim %.3f)\n", poi.Records[p.X], poi.Records[p.Y], p.Sim)
	}
}
