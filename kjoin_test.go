package kjoin_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"kjoin"
	"kjoin/datasets"
)

// fig1 builds the paper's Figure 1 hierarchy through the public API.
func fig1() *kjoin.Hierarchy {
	h := kjoin.NewHierarchy("Root")
	node := map[string]kjoin.NodeID{"Root": h.Root()}
	add := func(parent, name string) {
		node[name] = h.Add(node[parent], name)
	}
	add("Root", "Food")
	add("Food", "WesternFood")
	add("WesternFood", "Fastfood")
	add("WesternFood", "Pizza")
	add("Fastfood", "BurgerKing")
	add("Fastfood", "KFC")
	add("Pizza", "PizzaHut")
	add("Pizza", "Dominos")
	add("Root", "Location")
	add("Location", "US")
	add("US", "CA")
	add("US", "NY")
	add("CA", "SanFrancisco")
	add("CA", "PaloAlto")
	add("SanFrancisco", "MountainView")
	add("MountainView", "GoogleHeadquarters")
	add("NY", "NewYork")
	add("NewYork", "Manhattan")
	add("NewYork", "Brooklyn")
	return h
}

var table1 = [][]string{
	{"BurgerKing", "MountainView"},
	{"Pizza", "PaloAlto", "Brooklyn"},
	{"Fastfood", "GoogleHeadquarters"},
	{"PizzaHut", "KFC", "CA"},
	{"Pizza", "GoogleHeadquarters"},
	{"Fastfood", "Manhattan"},
	{"Brooklyn", "Food"},
	{"Pizza", "KFC", "Dominos", "SanFrancisco", "Manhattan", "Brooklyn"},
	{"Fastfood", "PizzaHut", "BurgerKing", "PaloAlto", "MountainView", "NewYork"},
}

func TestPublicSelfJoinPaperExample(t *testing.T) {
	h := fig1()
	pairs, stats, err := kjoin.SelfJoin(h, table1, kjoin.Defaults(0.7, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].X != 0 || pairs[0].Y != 2 {
		t.Fatalf("pairs = %v, want exactly ⟨S1, S3⟩", pairs)
	}
	if math.Abs(pairs[0].Sim-19.0/29) > 1e-9 {
		t.Errorf("sim = %v, want 19/29", pairs[0].Sim)
	}
	if stats.Candidates == 0 {
		t.Error("stats should report candidates")
	}
}

func TestPublicSimilarity(t *testing.T) {
	h := fig1()
	opt := kjoin.Defaults(0.5, 0.5)
	// {BurgerKing, MountainView} vs {PizzaHut, KFC, CA}: overlap 27/20,
	// Jaccard 27/73 (paper §2.1.2).
	s, err := kjoin.Similarity(h,
		[]string{"BurgerKing", "MountainView"},
		[]string{"PizzaHut", "KFC", "CA"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-27.0/73) > 1e-9 {
		t.Errorf("Similarity = %v, want 27/73", s)
	}
	// Bad options surface errors.
	if _, err := kjoin.Similarity(h, nil, nil, kjoin.Options{}); err == nil {
		t.Error("zero options should be rejected")
	}
}

func TestPublicRSJoinAndMetrics(t *testing.T) {
	h := fig1()
	opt := kjoin.Defaults(0.7, 0.5)
	opt.Set = kjoin.Dice
	opt.Metric = kjoin.WuPalmer
	opt.Scheme = kjoin.NodeScheme
	opt.Verifier = kjoin.BasicVerify
	opt.Weighted = false
	pairs, _, err := kjoin.Join(h, table1[:4], table1[4:], opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.X < 0 || p.X >= 4 || p.Y < 0 || p.Y >= 5 {
			t.Errorf("pair %v out of range", p)
		}
		if p.Sim < 0.5-1e-9 {
			t.Errorf("pair %v below τ", p)
		}
	}
}

func TestPublicPlusWithSynonyms(t *testing.T) {
	h := fig1()
	d := kjoin.NewSynonyms()
	d.Add("kfc", "kentuckyfriedchicken")
	opt := kjoin.Defaults(0.8, 0.9)
	opt.Plus = true
	opt.Synonyms = d
	pairs, _, err := kjoin.SelfJoin(h, [][]string{
		{"KFC", "MountainView"},
		{"KentuckyFriedChicken", "MountainView"},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Sim < 0.999 {
		t.Fatalf("synonym pair should join with sim 1, got %v", pairs)
	}
}

func TestHierarchySerializationRoundTrip(t *testing.T) {
	h := fig1()
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := kjoin.ReadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != h.Len() {
		t.Fatal("round trip changed the hierarchy")
	}
}

func TestHierarchyIngestionAndTokenize(t *testing.T) {
	h, err := kjoin.HierarchyFromPaths(strings.NewReader(
		"Food/WesternFood/Fastfood/KFC\nFood/WesternFood/Fastfood/BurgerKing\n"), '/', "Root")
	if err != nil {
		t.Fatal(err)
	}
	opt := kjoin.Defaults(0.7, 0.5)
	s, err := kjoin.Similarity(h, []string{"KFC"}, []string{"BurgerKing"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.6) > 1e-9 { // element sim 3/4 → Jaccard 0.6
		t.Errorf("sim = %v, want 0.6", s)
	}
	h2, err := kjoin.HierarchyFromEdges(strings.NewReader(
		"Food\tWesternFood\nWesternFood\tFastfood\nFastfood\tKFC\nFastfood\tBurgerKing\n"), "Root")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := kjoin.Similarity(h2, []string{"KFC"}, []string{"BurgerKing"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Errorf("path vs edge ingestion disagree: %v vs %v", s2, s)
	}
	toks := kjoin.Tokenize("Californian food at Fillmore st.")
	if len(toks) != 5 || toks[0] != "californian" {
		t.Errorf("Tokenize = %v", toks)
	}
}

// Pathological inputs must not break the join.
func TestPathologicalInputs(t *testing.T) {
	// A deep chain hierarchy (depth 60).
	h := kjoin.NewHierarchy("root")
	n := h.Root()
	var names []string
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("chain%02d", i)
		n = h.Add(n, name)
		names = append(names, name)
	}
	objs := [][]string{
		{names[59], names[10]},
		{names[58], names[10]},
		{},          // empty object
		{names[59]}, // singleton
		names,       // giant object with the whole chain
	}
	for _, tau := range []float64{0.3, 0.9, 1.0} {
		for _, delta := range []float64{0.3, 0.9, 1.0} {
			opt := kjoin.Defaults(delta, tau)
			pairs, _, err := kjoin.SelfJoin(h, objs, opt)
			if err != nil {
				t.Fatalf("δ=%v τ=%v: %v", delta, tau, err)
			}
			for _, p := range pairs {
				if p.Sim < tau-1e-9 {
					t.Errorf("δ=%v τ=%v: pair %v below τ", delta, tau, p)
				}
			}
		}
	}
	// A star hierarchy (10k children of the root).
	star := kjoin.NewHierarchy("root")
	var tok []string
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("leaf%d", i)
		star.Add(star.Root(), name)
		if i < 30 {
			tok = append(tok, name)
		}
	}
	pairs, _, err := kjoin.SelfJoin(star, [][]string{tok, tok[:20]}, kjoin.Defaults(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Errorf("star join pairs = %v", pairs)
	}
}

func TestHierarchyFromDAG(t *testing.T) {
	h, err := kjoin.HierarchyFromDAG([]kjoin.DAGNode{
		{Name: "Root"},
		{Name: "A", Parents: []int{0}},
		{Name: "B", Parents: []int{0}},
		{Name: "C", Parents: []int{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Lookup("C")); got != 2 {
		t.Errorf("C duplicated %d times, want 2", got)
	}
}

func TestCluster(t *testing.T) {
	pairs := []kjoin.Pair{{X: 0, Y: 1}, {X: 1, Y: 2}, {X: 4, Y: 5}}
	got := kjoin.Cluster(7, pairs)
	want := [][]int{{0, 1, 2}, {3}, {4, 5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Cluster = %v, want %v", got, want)
	}
	// Out-of-range pairs are ignored; empty inputs are fine.
	got = kjoin.Cluster(2, []kjoin.Pair{{X: -1, Y: 5}})
	if !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Errorf("Cluster = %v", got)
	}
	if got := kjoin.Cluster(0, nil); len(got) != 0 {
		t.Errorf("Cluster(0) = %v", got)
	}
}

func TestPublicIndexerAndTopK(t *testing.T) {
	h := fig1()
	opt := kjoin.Defaults(0.7, 0.6)
	ix, err := kjoin.NewIndexer(h, opt)
	if err != nil {
		t.Fatal(err)
	}
	var all []kjoin.Pair
	for _, o := range table1 {
		pairs, err := ix.Add(o)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, pairs...)
	}
	if len(all) != 1 || all[0].X != 0 || all[0].Y != 2 {
		t.Fatalf("indexer pairs = %v, want ⟨S1, S3⟩", all)
	}
	matches, err := ix.Query([]string{"BurgerKing", "MountainView"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("query should match the indexed S1")
	}
	top, _, err := kjoin.TopKSelfJoin(h, table1, 3, kjoin.Defaults(0.7, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("top-3 returned %d pairs", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Sim > top[i-1].Sim+1e-12 {
			t.Error("top-k not sorted by similarity")
		}
	}
}

// Integration: a generated dataset joined through the public API recovers
// a sensible share of its injected duplicates, deterministically.
func TestPublicDatasetIntegration(t *testing.T) {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	c := datasets.GenRecords(hr, datasets.POIConfig(1500))
	opt := kjoin.Defaults(0.8, 0.85)
	pairs, stats, err := kjoin.SelfJoin(hr.H, c.Records, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates == 0 {
		t.Fatal("no candidates generated")
	}
	keys := make([][2]int, len(pairs))
	for i, p := range pairs {
		keys[i] = [2]int{p.X, p.Y}
	}
	q := datasets.Measure(keys, c.Truth)
	if q.Precision() < 0.95 {
		t.Errorf("precision = %v, want ≥ 0.95 (injected duplicates are the only similar pairs)", q.Precision())
	}
	if q.Recall() < 0.15 {
		t.Errorf("recall = %v, too low for τ=0.85 near-duplicates", q.Recall())
	}
	// Determinism end to end.
	pairs2, _, err := kjoin.SelfJoin(hr.H, c.Records, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pairs, pairs2) {
		t.Error("join is not deterministic")
	}
}
