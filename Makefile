# Developer entry points. CI runs the same targets; see
# .github/workflows/ci.yml.

GO ?= go

# Fuzz targets for the smoke pass: package, then fuzz function.
FUZZ_TARGETS = \
	./internal/hierarchy,FuzzRead \
	./internal/hierarchy,FuzzFromPaths \
	./internal/hierarchy,FuzzFromEdges \
	./internal/strutil,FuzzEditDistanceWithin \
	./internal/strutil,FuzzTokenize \
	./internal/core,FuzzLoadIndexer

.PHONY: all build test lint vet fuzz-smoke bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus the project's own invariant analyzers
# (cmd/kjoin-lint): lockcheck, ctxpoll, floateq, maporder, errform.
lint: vet
	$(GO) run ./cmd/kjoin-lint ./...

vet:
	$(GO) vet ./...

# fuzz-smoke runs each native fuzz target briefly against its checked-in
# seed corpus (testdata/fuzz) — a regression net, not a discovery run.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%,*}; fn=$${t#*,}; \
		echo "fuzz $$pkg $$fn"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=10s; \
	done

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...
