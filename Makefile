# Developer entry points. CI runs the same targets; see
# .github/workflows/ci.yml.

GO ?= go

# Fuzz targets for the smoke pass: package, then fuzz function.
FUZZ_TARGETS = \
	./internal/hierarchy,FuzzRead \
	./internal/hierarchy,FuzzFromPaths \
	./internal/hierarchy,FuzzFromEdges \
	./internal/strutil,FuzzEditDistanceWithin \
	./internal/strutil,FuzzTokenize \
	./internal/core,FuzzLoadIndexer \
	./internal/wal,FuzzWALReplay \
	./internal/wal,FuzzWALStream \
	./internal/cluster,FuzzGatherMerge \
	./internal/cluster,FuzzCoordinatorWALReplay

# bin/kjoin-lint is declared phony so `go build` (itself incremental)
# decides staleness, not make.
.PHONY: all build test test-race lint lint-self analysis-test bin/kjoin-lint vet fuzz-smoke bench bench-json perf-smoke crash-smoke replication-smoke segment-smoke cluster-smoke reshard-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race is the CI test job: the whole suite under the race detector.
test-race:
	$(GO) test -race ./...

# lint runs go vet plus the project's own invariant analyzers
# (cmd/kjoin-lint): lockcheck, ctxpoll, floateq, maporder, errform,
# lockorder, ackorder, syncerr, goleak. The driver is built once so the
# module-wide pass (which loads every package for facts) isn't paying a
# `go run` rebuild on top.
lint: vet bin/kjoin-lint
	./bin/kjoin-lint ./...

# lint-self runs the analyzers over the analysis framework itself —
# the linter must hold its own invariants.
lint-self: bin/kjoin-lint
	./bin/kjoin-lint ./internal/analysis/...

bin/kjoin-lint:
	$(GO) build -o bin/kjoin-lint ./cmd/kjoin-lint

# analysis-test runs the analyzer framework and analyzer suites
# uncached: analysistest fixtures live on disk and a stale cache can
# mask testdata edits.
analysis-test:
	$(GO) test -count=1 ./internal/analysis/...

vet:
	$(GO) vet ./...

# fuzz-smoke runs each native fuzz target briefly against its checked-in
# seed corpus (testdata/fuzz) — a regression net, not a discovery run.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%,*}; fn=$${t#*,}; \
		echo "fuzz $$pkg $$fn"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=10s; \
	done

# crash-smoke runs the deterministic fault-injection recovery matrix
# under the race detector: scripted WAL/snapshot failures and crashes at
# every write boundary, each followed by a reboot that must reproduce
# exactly the acknowledged adds with bit-identical query answers.
crash-smoke:
	$(GO) test -race -count=1 \
		-run 'TestCrashMatrix|TestCrashSweepEveryWalWrite|TestConcurrentAddsCrashAtSyncBoundary|TestRecovery|TestRecoverRejectsDeletedWal|TestWalFailureDegradesNotCorrupts' \
		./internal/server/
	$(GO) test -race -count=1 ./internal/wal/ ./internal/fault/

# replication-smoke runs the replica chaos matrix under the race
# detector: WAL-shipping followers fed through deterministic network
# faults (drops, stalls, mid-frame truncation, hangups), kill/restart
# resume, primary compaction during follower downtime, staleness gating
# and fail-over routing — every acked add must be visible on every live
# replica with bit-identical query answers.
replication-smoke:
	$(GO) test -race -count=1 ./internal/replica/
	$(GO) test -race -count=1 \
		-run 'TestWALStream|TestReplica|TestApplyReplicated|TestSnapshotBuffer|TestAdmitRetryAfter' \
		./internal/server/ ./internal/serverutil/
	$(GO) test -race -count=1 ./cmd/kjoin-serve/

# cluster-smoke runs the scatter-gather chaos matrix and differential
# suite under the race detector: a coordinator over real shard servers
# joined by deterministic network faults (dead shard, stalled shard,
# mid-frame truncation, flapping breaker, deadline expiry mid-gather,
# replica hedging and fail-over), asserting coverage headers, breaker
# transitions, no goroutine leaks, and full-coverage answers
# bit-identical to the single-node engine.
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestClientHonorsRetryAfter|TestClientRetryAfterCappedByContext|TestClientSimilarity|TestNetInjector' \
		./internal/replica/ ./internal/fault/
	$(GO) test -race -count=1 -run 'TestFlagsClusterConfig|TestFlagsRejectLoudly' ./cmd/kjoin-serve/
	$(GO) test -race -count=1 -run 'TestStreamPollJitterBandAndDeterminism' ./internal/server/

# reshard-smoke runs the durable control plane and live-resharding
# chaos matrix under the race detector: coordinator kill/restart and
# crash-at-every-WAL-write recovery sweeps (every acked add survives
# with bit-identical answers), reshard grow/shrink differentials, the
# dual-read window under a throttled mover, transient shard death
# mid-migration, abort-then-retry, mid-migration coordinator crashes,
# stale route-version refusals, and the coordinator durability flags.
reshard-smoke:
	$(GO) test -race -count=1 \
		-run 'TestCoordinator|TestReshard|TestStaleRouteVersion|TestAddChargesRetryBudgetOnce' \
		./internal/cluster/
	$(GO) test -race -count=1 -run 'TestFlagsDurableCoordinatorConfig|TestFlagsRejectLoudly' ./cmd/kjoin-serve/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-json refreshes the "current" section of BENCH_hotpath.json with
# the hot-path benchmarks (self-join, R-S join, pairwise similarity).
# Pass -hotpath-baseline through cmd/kjoin-bench directly to re-pin the
# baseline section instead.
bench-json:
	$(GO) run ./cmd/kjoin-bench -hotpath BENCH_hotpath.json

# perf-smoke is the CI-sized performance gate: the allocation-regression
# tests (steady-state verification must stay at zero allocs per pair)
# plus one iteration of each hot benchmark to catch bit-rot in the bench
# code itself. MixedAddQuery covers the segmented engine's concurrent
# add/query path.
perf-smoke:
	$(GO) test ./internal/verify/ -run 'ZeroAlloc' -count=1
	$(GO) test -bench 'SelfJoinPOI|Similarity|MixedAddQuery' -benchtime=1x -benchmem -run='^$$' .
	$(GO) test -bench . -benchtime=1x -benchmem -run='^$$' ./internal/verify/ ./internal/sig/

# segment-smoke runs the segmented-engine proofs under the race
# detector: the concurrent Add/Seal/Merge/RunQuery stress, the
# differential bit-identity suite against the single-structure path,
# the merge-policy/confluence units, the snapshot-v3 layout round-trip,
# and the WAL seal-record recovery layout test.
segment-smoke:
	$(GO) test -race -count=1 \
		-run 'TestSegmented|TestSnapshotV3|TestMerge|TestIndexer|TestParallelJoinBitIdentical' \
		./internal/core/
	$(GO) test -race -count=1 -run 'TestRecoverySegmentLayoutFromSealRecords' ./internal/server/
