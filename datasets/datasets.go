// Package datasets exposes the synthetic workload generators and quality
// measures used by the K-Join evaluation harness: a knowledge hierarchy
// with the shape of the paper's Table 2, POI/Tweet-style record
// collections (Table 3), the Pub and Res labeled corpora for
// effectiveness experiments (Table 4), and precision/recall/F-measure
// evaluation. Every generator is deterministic in its seed.
package datasets

import (
	"kjoin/internal/dataset"
	"kjoin/internal/eval"
)

// HierarchyConfig controls GenHierarchy.
type HierarchyConfig = dataset.HierarchyConfig

// Hier is a generated hierarchy plus per-depth node lists.
type Hier = dataset.Hier

// DefaultHierarchy returns the paper's Table 2 configuration
// (4222 nodes, height 6, fanout 7/49/1).
func DefaultHierarchy() HierarchyConfig { return dataset.DefaultHierarchy() }

// GenHierarchy builds a two-domain knowledge hierarchy.
func GenHierarchy(cfg HierarchyConfig) *Hier { return dataset.GenHierarchy(cfg) }

// Collection is a record collection with duplicate ground truth.
type Collection = dataset.Collection

// RecordConfig controls GenRecords.
type RecordConfig = dataset.RecordConfig

// POIConfig returns the POI configuration of Table 3 for n records.
func POIConfig(n int) RecordConfig { return dataset.POIConfig(n) }

// TweetConfig returns the Tweet configuration of Table 3 for n records.
func TweetConfig(n int) RecordConfig { return dataset.TweetConfig(n) }

// GenRecords generates a POI/Tweet-style collection over the hierarchy.
func GenRecords(hr *Hier, cfg RecordConfig) *Collection { return dataset.GenRecords(hr, cfg) }

// Labeled is a corpus with ground truth, hierarchy and rule dictionaries.
type Labeled = dataset.Labeled

// PubConfig controls GenPub; ResConfig controls GenRes.
type (
	PubConfig = dataset.PubConfig
	ResConfig = dataset.ResConfig
)

// DefaultPub returns the Pub corpus configuration (1879 papers).
func DefaultPub() PubConfig { return dataset.DefaultPub() }

// GenPub generates the Pub corpus (typo/abbreviation/alias errors).
func GenPub(cfg PubConfig) *Labeled { return dataset.GenPub(cfg) }

// DefaultRes returns the Res corpus configuration (864 restaurants).
func DefaultRes() ResConfig { return dataset.DefaultRes() }

// GenRes generates the Res corpus (synonym/hierarchy errors) over hr.
func GenRes(hr *Hier, cfg ResConfig) *Labeled { return dataset.GenRes(hr, cfg) }

// CollectionStats describes a collection in Table 3's format.
type CollectionStats = dataset.CollectionStats

// Stats measures a record collection against a hierarchy.
func Stats(hr *Hier, records [][]string) CollectionStats {
	return dataset.ComputeCollectionStats(hr.H, records)
}

// Quality holds precision/recall/F-measure counts.
type Quality = eval.Quality

// Measure compares result pairs against ground truth.
func Measure(results [][2]int, truth map[[2]int]bool) Quality {
	return eval.Measure(results, truth)
}
