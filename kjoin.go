// Package kjoin implements K-Join, the knowledge-aware similarity join of
// Shang, Liu, Li and Feng (ICDE 2017): given a knowledge hierarchy and
// collections of objects (sets of string elements), it finds all pairs
// whose knowledge-aware set similarity reaches a threshold τ, where
// element similarity is derived from the hierarchy (Definition 1) with an
// element threshold δ.
//
// The implementation is the paper's full filter-and-verification
// framework: node/shallow/deep signature prefixes (plain and weighted)
// for candidate generation, and count pruning, weighted count pruning,
// subgraph decomposition and adaptive bound-driven verification.
//
// Quick start:
//
//	h := kjoin.NewHierarchy("Root")
//	food := h.Add(h.Root(), "Food")
//	...
//	pairs, stats, err := kjoin.SelfJoin(h, objects, kjoin.Defaults(0.7, 0.6))
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package kjoin

import (
	"context"
	"io"

	"kjoin/internal/core"
	"kjoin/internal/elem"
	"kjoin/internal/hierarchy"
	"kjoin/internal/setmetric"
	"kjoin/internal/sig"
	"kjoin/internal/strutil"
	"kjoin/internal/synonym"
	"kjoin/internal/verify"
)

// Hierarchy is a knowledge hierarchy: a rooted tree of named nodes.
// Create one with NewHierarchy or ReadHierarchy, or convert a DAG with
// HierarchyFromDAG (paper §6.5).
type Hierarchy = hierarchy.Hierarchy

// NodeID identifies a node of a Hierarchy; the root is NodeID 0.
type NodeID = hierarchy.NodeID

// DAGNode is one node of a DAG input for HierarchyFromDAG.
type DAGNode = hierarchy.DAGNode

// NewHierarchy returns a hierarchy containing only a root node.
func NewHierarchy(rootName string) *Hierarchy { return hierarchy.New(rootName) }

// ReadHierarchy parses the text format written by Hierarchy.WriteTo.
func ReadHierarchy(r io.Reader) (*Hierarchy, error) { return hierarchy.Read(r) }

// HierarchyFromDAG converts a DAG to a tree by duplicating multi-parent
// nodes under each parent (paper §6.5).
func HierarchyFromDAG(dag []DAGNode) (*Hierarchy, error) { return hierarchy.FromDAG(dag) }

// HierarchyFromPaths builds a hierarchy from a path-per-line category
// listing ("Food/WesternFood/Fastfood/KFC"), the shape knowledge-base
// dumps commonly reduce to. Node identity is the full path, so the same
// name may appear under several parents (multi-node elements, §6.4).
func HierarchyFromPaths(r io.Reader, sep byte, rootName string) (*Hierarchy, error) {
	return hierarchy.FromPaths(r, sep, rootName)
}

// HierarchyFromEdges builds a hierarchy from "parent\tchild" is-a name
// pairs. The input must be a forest; use HierarchyFromDAG for graphs
// with shared children.
func HierarchyFromEdges(r io.Reader, rootName string) (*Hierarchy, error) {
	return hierarchy.FromEdges(r, rootName)
}

// Tokenize splits raw text into lowercase alphanumeric tokens — the
// paper's object model ("we model each object as a set of elements by
// tokenizing the object", §2.1).
func Tokenize(s string) []string { return strutil.Tokenize(s) }

// Synonyms is a dictionary of synonym groups, used by K-Join+ resolution
// (φ = 1 for synonyms in Equation 2) and by rule-based baselines.
type Synonyms = synonym.Dict

// NewSynonyms returns an empty synonym dictionary.
func NewSynonyms() *Synonyms { return synonym.New() }

// ElementMetric selects the element similarity formula.
type ElementMetric = elem.Metric

// Element similarity metrics (paper Definition 1 and §6.2).
const (
	// Standard is SIM(x, y) = depth(LCA) / max(depth(x), depth(y)).
	Standard = elem.Standard
	// WuPalmer is SIM(x, y) = 2·depth(LCA) / (depth(x) + depth(y)).
	WuPalmer = elem.WuPalmer
)

// SetMetric selects the object-level set similarity (§6.3).
type SetMetric = setmetric.Kind

// Set similarity metrics.
const (
	Jaccard = setmetric.Jaccard
	Dice    = setmetric.Dice
	Cosine  = setmetric.Cosine
)

// Scheme selects the signature filtering scheme (§3.1, §4).
type Scheme = sig.Scheme

// Signature schemes.
const (
	// NodeScheme uses the single node signature at depth d_δ.
	NodeScheme = sig.Node
	// ShallowScheme uses the shallow path signatures (Definition 6).
	ShallowScheme = sig.Shallow
	// DeepScheme uses the deep path signatures (Definition 7) — the
	// highest pruning power and the paper's recommendation.
	DeepScheme = sig.Deep
)

// Verifier selects the verification algorithm (§3.2, §5).
type Verifier = verify.Kind

// Verification algorithms.
const (
	// BasicVerify solves one maximum matching on the whole bigraph.
	BasicVerify = verify.Basic
	// SubGraphVerify decomposes by node signature (Lemma 8).
	SubGraphVerify = verify.SubGraph
	// AdaptiveVerify adds upper/lower bounds with early termination
	// (Algorithm 3) — the paper's recommendation.
	AdaptiveVerify = verify.Adaptive
)

// Options configures a join; start from Defaults.
type Options = core.Options

// Pair is one join result. For a self join, X < Y index the input slice;
// for an R-S join, X indexes R and Y indexes S.
type Pair = core.Pair

// Stats reports the work a join did (candidates, prunings, timings).
type Stats = core.Stats

// Defaults returns the paper's recommended configuration for the given
// thresholds: deep signatures with the weighted path prefix, adaptive
// verification, Jaccard set similarity, standard element metric.
func Defaults(delta, tau float64) Options { return core.Defaults(delta, tau) }

// SelfJoin finds all pairs (x, y), x < y, of objects with
// SIMδ(x, y) ≥ τ. Each object is a set of string elements (tokens);
// duplicates within an object are ignored.
func SelfJoin(h *Hierarchy, objects [][]string, opt Options) ([]Pair, *Stats, error) {
	return core.SelfJoin(h, objects, opt)
}

// SelfJoinCtx is SelfJoin under a cancellation context: a cancelled
// context (client disconnect, deadline) aborts the join within one
// filter/verify batch and returns ctx.Err().
func SelfJoinCtx(ctx context.Context, h *Hierarchy, objects [][]string, opt Options) ([]Pair, *Stats, error) {
	return core.SelfJoinCtx(ctx, h, objects, opt)
}

// Join finds all pairs (r, s) ∈ R × S with SIMδ(r, s) ≥ τ (paper §6.1).
func Join(h *Hierarchy, r, s [][]string, opt Options) ([]Pair, *Stats, error) {
	return core.Join(h, r, s, opt)
}

// JoinCtx is Join under a cancellation context; see SelfJoinCtx.
func JoinCtx(ctx context.Context, h *Hierarchy, r, s [][]string, opt Options) ([]Pair, *Stats, error) {
	return core.JoinCtx(ctx, h, r, s, opt)
}

// Similarity computes SIMδ(x, y) for two objects directly (Definition 2):
// the maximum-weight matching of the δ-thresholded element-similarity
// bigraph, normalized by the configured set metric.
func Similarity(h *Hierarchy, x, y []string, opt Options) (float64, error) {
	return core.Similarity(h, x, y, opt)
}

// SimilarityCtx is Similarity under a cancellation context.
func SimilarityCtx(ctx context.Context, h *Hierarchy, x, y []string, opt Options) (float64, error) {
	return core.SimilarityCtx(ctx, h, x, y, opt)
}

// InputError reports a structurally invalid input object (empty token
// list, empty-string token); detect it with errors.As. Indexer.Add,
// Indexer.Query and Similarity validate their inputs and return it.
type InputError = core.InputError

// TopKSelfJoin returns the k most similar pairs with similarity at least
// opt.Tau (the floor). It probes with a descending threshold schedule,
// so finding tight top pairs is much cheaper than one low-threshold join.
func TopKSelfJoin(h *Hierarchy, objects [][]string, k int, opt Options) ([]Pair, *Stats, error) {
	return core.TopKSelfJoin(h, objects, k, opt)
}

// Indexer is the online form of the join: add objects one at a time and
// get back the similar pairs against everything added before (streaming
// deduplication), or Query without inserting (similarity search).
type Indexer = core.Indexer

// Match is one Indexer.Query result.
type Match = core.Match

// PreparedQuery is a preprocessed similarity-search probe; see
// Indexer.PrepareQuery and Indexer.RunQuery. Preparing and running are
// both safe from any number of goroutines concurrently with adds.
type PreparedQuery = core.PreparedQuery

// NewIndexer returns an empty Indexer over the hierarchy.
func NewIndexer(h *Hierarchy, opt Options) (*Indexer, error) {
	return core.NewIndexer(h, opt)
}

// LoadIndexer rebuilds an Indexer from a snapshot written by
// Indexer.WriteSnapshot. Options must match the snapshot's configuration
// fingerprint.
func LoadIndexer(h *Hierarchy, opt Options, r io.Reader) (*Indexer, error) {
	return core.LoadIndexer(h, opt, r)
}

// Cluster groups n objects into similarity clusters given join result
// pairs: connected components of the similarity graph (the paper's
// motivating "classify similar restaurants together" use). Every object
// appears in exactly one cluster; singletons are included. Clusters are
// ordered by their smallest member.
func Cluster(n int, pairs []Pair) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		if p.X < 0 || p.X >= n || p.Y < 0 || p.Y >= n {
			continue
		}
		rx, ry := find(p.X), find(p.Y)
		if rx != ry {
			if rx > ry {
				rx, ry = ry, rx
			}
			parent[ry] = rx // root at the smallest member
		}
	}
	members := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if len(members[r]) == 0 {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, members[r])
	}
	return out
}
