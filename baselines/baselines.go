// Package baselines exposes the comparison systems of the K-Join paper's
// evaluation (§7) for downstream benchmarking: FastJoin (fuzzy-token set
// similarity join, Wang et al. ICDE 2011), Synonym (rule-normalized set
// join, Lu et al. SIGMOD 2013) and a simulated crowdsourcing oracle
// (CrowdER, Wang et al. VLDB 2012). All are from-scratch implementations
// on the same substrates as K-Join itself; see DESIGN.md for fidelity
// notes and EXPERIMENTS.md for how they compare.
package baselines

import "kjoin/internal/baseline"

// Pair is one join result (X < Y index the object slice).
type Pair = baseline.Pair

// Stats reports the work a baseline join did.
type Stats = baseline.Stats

// FastJoinOptions configures FastJoin.
type FastJoinOptions = baseline.FastJoinOptions

// FastJoin runs the fuzzy-token set similarity self join: fuzzy-Jaccard
// with edit-similarity token matching and segment-signature filtering.
func FastJoin(objects [][]string, opt FastJoinOptions) ([]Pair, *Stats, error) {
	return baseline.FastJoin(objects, opt)
}

// SynonymJoinOptions configures SynonymJoin.
type SynonymJoinOptions = baseline.SynonymJoinOptions

// SynonymJoin runs the rule-normalized exact set join.
func SynonymJoin(objects [][]string, opt SynonymJoinOptions) ([]Pair, *Stats, error) {
	return baseline.SynonymJoin(objects, opt)
}

// CrowdOptions configures the simulated crowdsourcing oracle.
type CrowdOptions = baseline.CrowdOptions

// DefaultCrowdOptions returns the error profile used in the reproduction
// of the paper's Table 4.
func DefaultCrowdOptions(truth map[[2]int]bool, seed uint64) CrowdOptions {
	return baseline.DefaultCrowdOptions(truth, seed)
}

// Crowd runs the simulated crowdsourcing entity-resolution baseline.
func Crowd(objects [][]string, opt CrowdOptions) ([]Pair, *Stats, error) {
	return baseline.Crowd(objects, opt)
}
