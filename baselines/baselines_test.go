package baselines_test

import (
	"testing"

	"kjoin/baselines"
	"kjoin/datasets"
)

// The public baseline surface runs end-to-end on a generated corpus.
func TestPublicBaselines(t *testing.T) {
	hr := datasets.GenHierarchy(datasets.DefaultHierarchy())
	res := datasets.GenRes(hr, datasets.ResConfig{Seed: 19, N: 300, DupFrac: 0.4})

	fj, st, err := baselines.FastJoin(res.Records, baselines.FastJoinOptions{Delta: 0.8, Tau: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 300 || st.Candidates == 0 {
		t.Errorf("FastJoin stats = %+v", st)
	}
	for _, p := range fj {
		if p.Sim < 0.6-1e-9 || p.X >= p.Y {
			t.Errorf("bad FastJoin pair %+v", p)
		}
	}

	sj, _, err := baselines.SynonymJoin(res.Records, baselines.SynonymJoinOptions{Tau: 0.6, Synonyms: res.Synonyms})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sj {
		if p.Sim < 0.6-1e-9 {
			t.Errorf("bad SynonymJoin pair %+v", p)
		}
	}

	cr, _, err := baselines.Crowd(res.Records, baselines.DefaultCrowdOptions(res.Truth, 7))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][2]int, len(cr))
	for i, p := range cr {
		keys[i] = [2]int{p.X, p.Y}
	}
	q := datasets.Measure(keys, res.Truth)
	if q.Recall() < 0.85 {
		t.Errorf("crowd recall = %v, want ≥ 0.85", q.Recall())
	}
}
